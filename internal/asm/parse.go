package asm

import (
	"strings"

	"levioso/internal/isa"
)

// directive handles a line beginning with '.'.
func (a *assembler) directive(line string) error {
	name, rest := splitWord(line)
	switch name {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".global", ".globl":
		// All symbols are global; accepted for source compatibility.
	case ".equ", ".set":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return a.errf("%s wants name, value", name)
		}
		if !isIdent(parts[0]) {
			return a.errf("%s: bad name %q", name, parts[0])
		}
		e, err := a.parseExpr(parts[1])
		if err != nil {
			return err
		}
		// .equ values may reference earlier .equ symbols but not labels
		// (addresses of later code are unknown in pass 1).
		v, err := e.eval(a)
		if err != nil {
			return err
		}
		return a.define(parts[0], v)
	case ".align":
		e, err := a.parseExpr(rest)
		if err != nil {
			return err
		}
		n, ok := constValue(e)
		if !ok || n <= 0 || n&(n-1) != 0 {
			return a.errf(".align wants a positive power of two, got %q", rest)
		}
		if !a.inData {
			return a.errf(".align is only supported in .data")
		}
		for int64(len(a.data))%n != 0 {
			a.data = append(a.data, 0)
		}
	case ".byte", ".half", ".word", ".quad":
		if !a.inData {
			return a.errf("%s outside .data", name)
		}
		size := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".quad": 8}[name]
		for _, part := range splitOperands(rest) {
			e, err := a.parseExpr(part)
			if err != nil {
				return err
			}
			off := len(a.data)
			for i := 0; i < size; i++ {
				a.data = append(a.data, 0)
			}
			a.patches = append(a.patches, dataPatch{off: off, size: size, e: e, line: a.line})
		}
	case ".space", ".zero":
		if !a.inData {
			return a.errf("%s outside .data", name)
		}
		e, err := a.parseExpr(rest)
		if err != nil {
			return err
		}
		n, ok := constValue(e)
		if !ok || n < 0 {
			return a.errf("%s wants a non-negative constant", name)
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".secret":
		// .secret addr, len — marks [addr, addr+len) as secret-typed data.
		// Pure metadata: layout, symbols and timing are unaffected. Operands
		// may reference labels, so resolution is deferred to pass 2.
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return a.errf(".secret wants addr, len")
		}
		addr, err := a.parseExpr(parts[0])
		if err != nil {
			return err
		}
		length, err := a.parseExpr(parts[1])
		if err != nil {
			return err
		}
		a.secrets = append(a.secrets, secretPatch{addr: addr, len: length, line: a.line})
	case ".ascii", ".asciz":
		if !a.inData {
			return a.errf("%s outside .data", name)
		}
		b, err := a.parseString(rest)
		if err != nil {
			return err
		}
		a.data = append(a.data, b...)
		if name == ".asciz" {
			a.data = append(a.data, 0)
		}
	default:
		return a.errf("unknown directive %q", name)
	}
	return nil
}

// instruction parses one instruction (real or pseudo) and emits its
// expansion.
func (a *assembler) instruction(line string) error {
	mnem, rest := splitWord(line)
	ops := splitOperands(rest)
	src := line

	// Pseudo-instructions first.
	switch mnem {
	case "nop":
		return a.want(ops, 0, func() error {
			a.emit(isa.Inst{Op: isa.ADDI}, nil, false, false, src)
			return nil
		})
	case "li", "la":
		if len(ops) != 2 {
			return a.errf("%s wants rd, value", mnem)
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		e, err := a.parseExpr(ops[1])
		if err != nil {
			return err
		}
		if v, ok := constValue(e); ok && (v < -1<<31 || v > 1<<31-1) {
			// Two-instruction form covers 44-bit values:
			//   lui rd, hi ; addi rd, rd, lo   with v = hi<<12 + lo.
			lo12 := v & 0xfff
			if lo12 >= 1<<11 {
				lo12 -= 1 << 12
			}
			if hi := (v - lo12) >> 12; hi >= -1<<31 && hi <= 1<<31-1 {
				a.emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: hi}, nil, false, false, src)
				a.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: lo12}, nil, false, false, src)
				return nil
			}
			// General 64-bit form, three instructions:
			//   addi rd, zero, hi32 ; slli rd, rd, 32 ; addi rd, rd, lo32
			// where lo32 is the sign-extended low half and hi32 is computed
			// modulo 2^32 (the shift makes wraparound harmless).
			lo := int64(int32(uint32(uint64(v))))
			hi := int64(int32(uint32(uint64(v-lo) >> 32)))
			a.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: isa.RegZero, Imm: hi}, nil, false, false, src)
			a.emit(isa.Inst{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 32}, nil, false, false, src)
			a.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: lo}, nil, false, false, src)
			return nil
		}
		a.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: isa.RegZero}, e, false, false, src)
		return nil
	case "mv":
		return a.rr(ops, src, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs}
		})
	case "not":
		return a.rr(ops, src, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rs, Imm: -1}
		})
	case "neg":
		return a.rr(ops, src, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SUB, Rd: rd, Rs1: isa.RegZero, Rs2: rs}
		})
	case "seqz":
		return a.rr(ops, src, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SLTIU, Rd: rd, Rs1: rs, Imm: 1}
		})
	case "snez":
		return a.rr(ops, src, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SLTU, Rd: rd, Rs1: isa.RegZero, Rs2: rs}
		})
	case "j":
		if len(ops) != 1 {
			return a.errf("j wants a target")
		}
		e, err := a.parseExpr(ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.JAL, Rd: isa.RegZero}, e, true, false, src)
		return nil
	case "call":
		if len(ops) != 1 {
			return a.errf("call wants a target")
		}
		e, err := a.parseExpr(ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.JAL, Rd: isa.RegRA}, e, true, false, src)
		return nil
	case "jr":
		if len(ops) != 1 {
			return a.errf("jr wants a register")
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.JALR, Rd: isa.RegZero, Rs1: rs}, nil, false, false, src)
		return nil
	case "ret":
		return a.want(ops, 0, func() error {
			a.emit(isa.Inst{Op: isa.JALR, Rd: isa.RegZero, Rs1: isa.RegRA}, nil, false, false, src)
			return nil
		})
	case "beqz", "bnez", "bltz", "bgez", "blez", "bgtz":
		if len(ops) != 2 {
			return a.errf("%s wants rs, target", mnem)
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		e, err := a.parseExpr(ops[1])
		if err != nil {
			return err
		}
		var in isa.Inst
		switch mnem {
		case "beqz":
			in = isa.Inst{Op: isa.BEQ, Rs1: rs, Rs2: isa.RegZero}
		case "bnez":
			in = isa.Inst{Op: isa.BNE, Rs1: rs, Rs2: isa.RegZero}
		case "bltz":
			in = isa.Inst{Op: isa.BLT, Rs1: rs, Rs2: isa.RegZero}
		case "bgez":
			in = isa.Inst{Op: isa.BGE, Rs1: rs, Rs2: isa.RegZero}
		case "blez": // rs <= 0  <=>  0 >= rs
			in = isa.Inst{Op: isa.BGE, Rs1: isa.RegZero, Rs2: rs}
		case "bgtz": // rs > 0  <=>  0 < rs
			in = isa.Inst{Op: isa.BLT, Rs1: isa.RegZero, Rs2: rs}
		}
		a.emit(in, e, true, false, src)
		return nil
	case "ble", "bgt", "bleu", "bgtu":
		if len(ops) != 3 {
			return a.errf("%s wants rs1, rs2, target", mnem)
		}
		r1, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		r2, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		e, err := a.parseExpr(ops[2])
		if err != nil {
			return err
		}
		var in isa.Inst
		switch mnem {
		case "ble": // a <= b  <=>  b >= a
			in = isa.Inst{Op: isa.BGE, Rs1: r2, Rs2: r1}
		case "bgt": // a > b  <=>  b < a
			in = isa.Inst{Op: isa.BLT, Rs1: r2, Rs2: r1}
		case "bleu":
			in = isa.Inst{Op: isa.BGEU, Rs1: r2, Rs2: r1}
		case "bgtu":
			in = isa.Inst{Op: isa.BLTU, Rs1: r2, Rs2: r1}
		}
		a.emit(in, e, true, false, src)
		return nil
	case "halt":
		if len(ops) == 0 {
			a.emit(isa.Inst{Op: isa.HALT}, nil, false, false, src)
			return nil
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.HALT, Rs1: rs}, nil, false, false, src)
		return nil
	}

	op, ok := isa.OpByName(mnem)
	if !ok {
		return a.errf("unknown instruction %q", mnem)
	}
	return a.concrete(op, ops, src)
}

// concrete parses a real (non-pseudo) instruction's operands based on its
// opcode shape.
func (a *assembler) concrete(op isa.Op, ops []string, src string) error {
	emit := func(in isa.Inst, e expr, pcrel bool) {
		a.emit(in, e, pcrel, false, src)
	}
	switch {
	case op.IsLoad(), op == isa.JALR:
		// op rd, imm(rs1)  |  op rd, sym  (rs1=zero)
		if len(ops) != 2 {
			return a.errf("%s wants rd, addr", op)
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, e, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1}, e, false)
		return nil
	case op.IsStore():
		// op rs2, imm(rs1)
		if len(ops) != 2 {
			return a.errf("%s wants rs2, addr", op)
		}
		rs2, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, e, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, e, false)
		return nil
	case op == isa.CFLUSH:
		if len(ops) != 1 {
			return a.errf("cflush wants addr")
		}
		rs1, e, err := a.memOperand(ops[0])
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rs1: rs1}, e, false)
		return nil
	case op.IsBranch():
		if len(ops) != 3 {
			return a.errf("%s wants rs1, rs2, target", op)
		}
		r1, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		r2, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		e, err := a.parseExpr(ops[2])
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rs1: r1, Rs2: r2}, e, true)
		return nil
	case op == isa.JAL:
		// jal rd, target | jal target (rd=ra)
		var rd isa.Reg
		var targetOp string
		switch len(ops) {
		case 1:
			rd, targetOp = isa.RegRA, ops[0]
		case 2:
			r, err := a.reg(ops[0])
			if err != nil {
				return err
			}
			rd, targetOp = r, ops[1]
		default:
			return a.errf("jal wants [rd,] target")
		}
		e, err := a.parseExpr(targetOp)
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rd: rd}, e, true)
		return nil
	case op == isa.LUI:
		if len(ops) != 2 {
			return a.errf("lui wants rd, imm")
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		e, err := a.parseExpr(ops[1])
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rd: rd}, e, false)
		return nil
	case op == isa.FENCE:
		return a.want(ops, 0, func() error {
			emit(isa.Inst{Op: op}, nil, false)
			return nil
		})
	case op == isa.RDCYCLE:
		if len(ops) != 1 {
			return a.errf("rdcycle wants rd")
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rd: rd}, nil, false)
		return nil
	case op == isa.HALT, op == isa.PUTC, op == isa.PUTI:
		if len(ops) != 1 {
			return a.errf("%s wants rs", op)
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rs1: rs}, nil, false)
		return nil
	case op.HasRd() && op.HasRs1() && op.HasRs2():
		if len(ops) != 3 {
			return a.errf("%s wants rd, rs1, rs2", op)
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		r1, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		r2, err := a.reg(ops[2])
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rd: rd, Rs1: r1, Rs2: r2}, nil, false)
		return nil
	case op.HasRd() && op.HasRs1() && op.HasImm():
		if len(ops) != 3 {
			return a.errf("%s wants rd, rs1, imm", op)
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		r1, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		e, err := a.parseExpr(ops[2])
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rd: rd, Rs1: r1}, e, false)
		return nil
	default:
		return a.errf("cannot parse operands for %s", op)
	}
}

func (a *assembler) want(ops []string, n int, f func() error) error {
	if len(ops) != n {
		return a.errf("wrong operand count: got %d, want %d", len(ops), n)
	}
	return f()
}

// rr emits a two-register pseudo expansion.
func (a *assembler) rr(ops []string, src string, f func(rd, rs isa.Reg) isa.Inst) error {
	if len(ops) != 2 {
		return a.errf("wants rd, rs")
	}
	rd, err := a.reg(ops[0])
	if err != nil {
		return err
	}
	rs, err := a.reg(ops[1])
	if err != nil {
		return err
	}
	a.emit(f(rd, rs), nil, false, false, src)
	return nil
}

func (a *assembler) reg(s string) (isa.Reg, error) {
	r, ok := isa.RegByName(strings.TrimSpace(s))
	if !ok {
		return 0, a.errf("bad register %q", s)
	}
	return r, nil
}

// memOperand parses "imm(reg)", "(reg)", "sym(reg)" or a bare
// expression (base register zero).
func (a *assembler) memOperand(s string) (isa.Reg, expr, error) {
	s = strings.TrimSpace(s)
	open := strings.LastIndexByte(s, '(')
	if open < 0 {
		e, err := a.parseExpr(s)
		return isa.RegZero, e, err
	}
	if !strings.HasSuffix(s, ")") {
		return 0, nil, a.errf("bad memory operand %q", s)
	}
	r, err := a.reg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, nil, err
	}
	if open == 0 {
		return r, litExpr(0), nil
	}
	e, err := a.parseExpr(s[:open])
	return r, e, err
}

func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

// splitOperands splits on commas that are outside quotes and parentheses.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	inChar := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				inStr = false
			}
		case inChar:
			if s[i] == '\\' {
				i++
			} else if s[i] == '\'' {
				inChar = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == '\'':
			inChar = true
		case s[i] == '(':
			depth++
		case s[i] == ')':
			depth--
		case s[i] == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
