package faultinject

import (
	"net"
	"testing"
	"time"
)

func TestParseNetSpec(t *testing.T) {
	plan, err := ParseNetSpec("conn-kill:prob=0.05:first=200;latency:prob=0.2:delay=5ms:jitter=2ms;partial-write;corrupt-frame:prob=0.1;partition:prob=0.01", 42)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 || len(plan.Faults) != 5 {
		t.Fatalf("plan = %+v", plan)
	}
	want := []NetFault{
		{Kind: ConnKill, Prob: 0.05, FirstOps: 200},
		{Kind: NetLatency, Prob: 0.2, Delay: 5 * time.Millisecond, Jitter: 2 * time.Millisecond},
		{Kind: PartialWrite, Prob: 1},
		{Kind: CorruptFrame, Prob: 0.1},
		{Kind: NetPartition, Prob: 0.01},
	}
	for i, f := range plan.Faults {
		if f != want[i] {
			t.Fatalf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}
}

func TestParseNetSpecErrors(t *testing.T) {
	for _, spec := range []string{"bogus", "latency:delay=xyz", "conn-kill:probability=1", "latency:delay"} {
		if _, err := ParseNetSpec(spec, 1); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
	if plan, err := ParseNetSpec("  ", 1); err != nil || plan != nil {
		t.Fatalf("empty spec: plan=%v err=%v", plan, err)
	}
}

// pipeConns builds a connected TCP pair on loopback — real sockets, so the
// decorator is tested over the transport it will actually wrap.
func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestCorruptFrameAlwaysDetectable: the corrupted byte is NUL, which can
// never appear in valid NDJSON — so a corrupted frame is always a parse
// error, never a silently wrong result.
func TestCorruptFrameAlwaysDetectable(t *testing.T) {
	client, server := pipeConns(t)
	ni := NewNet(NetPlan{Seed: 7, Faults: []NetFault{{Kind: CorruptFrame, Prob: 1}}})
	wrapped := ni.Wrap(client)

	msg := []byte(`{"id":1,"output":"hello"}` + "\n")
	if _, err := wrapped.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := server.Read(got); err != nil {
		t.Fatal(err)
	}
	var zeros int
	for _, b := range got {
		if b == 0x00 {
			zeros++
		}
	}
	if zeros != 1 {
		t.Fatalf("corrupted frame has %d NUL bytes, want exactly 1: %q", zeros, got)
	}
	if f := ni.Fired(); f["corrupt-frame"] != 1 {
		t.Fatalf("fired = %v", f)
	}
}

// TestPartitionLatch: once partitioned, writes claim success, reads block
// until Close — and Close does unblock them.
func TestPartitionLatch(t *testing.T) {
	client, _ := pipeConns(t)
	ni := NewNet(NetPlan{Seed: 1, Faults: []NetFault{{Kind: NetPartition, Prob: 1}}})
	wrapped := ni.Wrap(client)

	if n, err := wrapped.Write([]byte("x")); err != nil || n != 1 {
		t.Fatalf("partitioned write: n=%d err=%v", n, err)
	}
	readDone := make(chan error, 1)
	go func() {
		_, err := wrapped.Read(make([]byte, 1))
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("partitioned read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	wrapped.Close()
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("partitioned read succeeded after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock the partitioned read")
	}
}

// TestPartialWriteKillsConn: the caller sees full success, the peer gets
// half a frame and then EOF — the frame can never silently complete later.
func TestPartialWriteKillsConn(t *testing.T) {
	client, server := pipeConns(t)
	ni := NewNet(NetPlan{Seed: 1, Faults: []NetFault{{Kind: PartialWrite, Prob: 1}}})
	wrapped := ni.Wrap(client)

	msg := []byte("0123456789")
	if n, err := wrapped.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("partial write claimed n=%d err=%v, want full success", n, err)
	}
	var got []byte
	buf := make([]byte, 64)
	for {
		n, err := server.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break // EOF from the injected kill
		}
	}
	if len(got) != len(msg)/2 {
		t.Fatalf("peer received %d bytes %q, want %d", len(got), got, len(msg)/2)
	}
}
