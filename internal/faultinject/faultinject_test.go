package faultinject_test

import (
	"errors"
	"strings"
	"testing"

	"levioso/internal/asm"
	"levioso/internal/cpu"
	"levioso/internal/faultinject"
	"levioso/internal/isa"
	"levioso/internal/simerr"
)

// loopSrc runs a load-bearing loop long enough for mid-run fault windows to
// land inside it.
const loopSrc = `
main:
	li t0, 2000
	li t1, 0
loop:
	ld t2, 0(gp)
	add t1, t1, t2
	addi t0, t0, -1
	bnez t0, loop
	halt t1
`

func run(t *testing.T, plan *faultinject.Plan, mutate func(*cpu.Config)) (cpu.Result, error) {
	t.Helper()
	prog := asm.MustAssemble("fi.s", loopSrc)
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 5_000_000
	cfg.WatchdogCycles = 2_000
	if mutate != nil {
		mutate(&cfg)
	}
	if plan != nil {
		faultinject.New(*plan, 1).Attach(&cfg)
	}
	c, err := cpu.New(prog, cfg, cpu.NopPolicy{})
	if err != nil {
		t.Fatalf("new core: %v", err)
	}
	return c.Run()
}

func TestCommitStallTripsWatchdog(t *testing.T) {
	_, err := run(t, &faultinject.Plan{
		Faults: []faultinject.Fault{{Kind: faultinject.CommitStall, Start: 100}},
	}, nil)
	if !errors.Is(err, simerr.ErrWatchdog) {
		t.Fatalf("want ErrWatchdog, got %v", err)
	}
	var re *simerr.RunError
	if !errors.As(err, &re) {
		t.Fatalf("no RunError in chain: %v", err)
	}
	if re.Transient() {
		t.Error("watchdog classified transient")
	}
	if !strings.Contains(re.Detail, "head seq=") && !strings.Contains(re.Detail, "window empty") {
		t.Errorf("watchdog detail lacks deadlock info: %q", re.Detail)
	}
}

func TestBoundedCommitStallOnlyCostsCycles(t *testing.T) {
	clean, err := run(t, nil, nil)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	stalled, err := run(t, &faultinject.Plan{
		Faults: []faultinject.Fault{{Kind: faultinject.CommitStall, Start: 100, End: 1100}},
	}, nil)
	if err != nil {
		t.Fatalf("bounded stall should complete: %v", err)
	}
	if stalled.ExitCode != clean.ExitCode {
		t.Errorf("exit diverged under bounded stall: %d != %d", stalled.ExitCode, clean.ExitCode)
	}
	// The ROB keeps filling during the stall, so commit recovers part of the
	// 1000-cycle window afterwards; most of it must still show up.
	if stalled.Stats.Cycles < clean.Stats.Cycles+500 {
		t.Errorf("stall cost not visible: %d vs %d cycles", stalled.Stats.Cycles, clean.Stats.Cycles)
	}
}

func TestStuckLoadTripsWatchdog(t *testing.T) {
	_, err := run(t, &faultinject.Plan{
		Faults: []faultinject.Fault{{Kind: faultinject.StuckLoad, Start: 200}},
	}, nil)
	if !errors.Is(err, simerr.ErrWatchdog) {
		t.Fatalf("want ErrWatchdog from stuck load, got %v", err)
	}
}

func TestDelayFillSlowsButCompletes(t *testing.T) {
	clean, err := run(t, nil, nil)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	slow, err := run(t, &faultinject.Plan{
		Faults: []faultinject.Fault{{Kind: faultinject.DelayFill, Extra: 50}},
	}, nil)
	if err != nil {
		t.Fatalf("delayed run: %v", err)
	}
	if slow.ExitCode != clean.ExitCode {
		t.Errorf("exit diverged under delay: %d != %d", slow.ExitCode, clean.ExitCode)
	}
	if slow.Stats.Cycles <= clean.Stats.Cycles {
		t.Errorf("delay fill had no cost: %d vs %d cycles", slow.Stats.Cycles, clean.Stats.Cycles)
	}
}

func TestMispredictStormForcesRecoveries(t *testing.T) {
	clean, err := run(t, nil, nil)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	storm, err := run(t, &faultinject.Plan{
		Seed:   42,
		Faults: []faultinject.Fault{{Kind: faultinject.MispredictStorm, Prob: 0.5}},
	}, nil)
	if err != nil {
		t.Fatalf("storm run: %v", err)
	}
	if storm.ExitCode != clean.ExitCode {
		t.Errorf("exit diverged under storm: %d != %d", storm.ExitCode, clean.ExitCode)
	}
	if storm.Stats.CondMispredicts <= clean.Stats.CondMispredicts {
		t.Errorf("storm did not raise mispredicts: %d vs %d",
			storm.Stats.CondMispredicts, clean.Stats.CondMispredicts)
	}
	if storm.Stats.Cycles <= clean.Stats.Cycles {
		t.Errorf("storm had no cycle cost: %d vs %d", storm.Stats.Cycles, clean.Stats.Cycles)
	}
}

func TestSeedDeterminism(t *testing.T) {
	plan := &faultinject.Plan{
		Seed:   7,
		Faults: []faultinject.Fault{{Kind: faultinject.MispredictStorm, Prob: 0.3}},
	}
	a, err := run(t, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(t, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("same seed, different stats:\n%v\nvs\n%v", a.Stats, b.Stats)
	}
}

func TestFirstAttemptsDisarmsOnRetry(t *testing.T) {
	plan := faultinject.Plan{
		Faults: []faultinject.Fault{{Kind: faultinject.CommitStall, Start: 1, FirstAttempts: 1}},
	}
	prog := asm.MustAssemble("fi.s", loopSrc)
	for attempt, wantFail := range map[int]bool{1: true, 2: false} {
		cfg := cpu.DefaultConfig()
		cfg.WatchdogCycles = 1_000
		faultinject.New(plan, attempt).Attach(&cfg)
		c, err := cpu.New(prog, cfg, cpu.NopPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Run()
		if wantFail && !errors.Is(err, simerr.ErrWatchdog) {
			t.Errorf("attempt %d: want watchdog, got %v", attempt, err)
		}
		if !wantFail && err != nil {
			t.Errorf("attempt %d: fault should be disarmed, got %v", attempt, err)
		}
	}
}

func TestPlannedPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("planned panic did not fire")
		}
	}()
	_, _ = run(t, &faultinject.Plan{
		Faults: []faultinject.Fault{{Kind: faultinject.Panic, Start: 500}},
	}, nil)
}

// stormSrc mixes the recovery-sensitive resources — the unpipelined divider,
// FENCE serialization, calls through the RAS, and store/load traffic — so a
// mispredict storm exercises every piece of state recoverFrom must restore.
const stormSrc = `
main:
	li s0, 400        # iterations
	li s1, 0          # accumulator
	li s2, 7
loop:
	andi t0, s0, 3
	beqz t0, dofence
	div t1, s0, s2    # operand-dependent divider occupancy
	add s1, s1, t1
	j next
dofence:
	fence
	ld t2, 0(gp)
	add s1, s1, t2
next:
	call twist
	addi s0, s0, -1
	bnez s0, loop
	halt s1
twist:
	sd s1, 8(gp)
	ld t3, 8(gp)
	beq t3, s1, tret
	addi s1, s1, 1
tret:
	ret
	.data
val:	.space 16
`

// TestStormRecoveryStateMatchesClean drives the core under a heavy forced
// mispredict storm, audits the recovery-sensitive internal state (divider
// ownership, fence queue, free lists, rename maps, object pools) every few
// cycles via CheckInvariants, and requires the architected results to match a
// never-mispredicted reference run: misprediction recovery must be invisible
// to architecture no matter how often it fires.
func TestStormRecoveryStateMatchesClean(t *testing.T) {
	prog := asm.MustAssemble("storm.s", stormSrc)
	build := func(plan *faultinject.Plan) *cpu.Core {
		cfg := cpu.DefaultConfig()
		cfg.MaxCycles = 10_000_000
		if plan != nil {
			faultinject.New(*plan, 1).Attach(&cfg)
		}
		c, err := cpu.New(prog, cfg, cpu.NopPolicy{})
		if err != nil {
			t.Fatalf("new core: %v", err)
		}
		return c
	}

	clean := build(nil)
	cleanRes, err := clean.Run()
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	storm := build(&faultinject.Plan{
		Seed:   99,
		Faults: []faultinject.Fault{{Kind: faultinject.MispredictStorm, Prob: 0.7}},
	})
	for !storm.Halted() {
		if err := storm.Step(); err != nil {
			t.Fatalf("storm step: %v", err)
		}
		if storm.CycleCount()%64 == 0 {
			if err := storm.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", storm.CycleCount(), err)
			}
		}
	}
	if err := storm.CheckInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}

	stormStats := storm.Stats()
	if stormStats.CondMispredicts <= cleanRes.Stats.CondMispredicts {
		t.Fatalf("storm did not raise mispredicts: %d vs %d",
			stormStats.CondMispredicts, cleanRes.Stats.CondMispredicts)
	}
	if got, want := storm.Output(), cleanRes.Output; got != want {
		t.Errorf("output diverged under storm: %q != %q", got, want)
	}
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if storm.ArchReg(r) != clean.ArchReg(r) {
			t.Errorf("reg %s diverged under storm: %#x != %#x",
				r, storm.ArchReg(r), clean.ArchReg(r))
		}
	}
}
