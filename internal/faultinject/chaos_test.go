package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"levioso/internal/dispatch"
	"levioso/internal/engine"
	"levioso/internal/isa"
	"levioso/internal/obs"
)

// chaosSources are distinct programs so the batch isn't one cache entry.
func chaosSources() []string {
	out := make([]string, 5)
	for i := range out {
		out[i] = fmt.Sprintf(`
func main() {
	var i;
	var s = %d;
	for (i = 0; i < 40; i = i + 1) { s = s * 31 + i; }
	print(s & 2047);
	return s & 63;
}`, 7+i*13)
	}
	return out
}

// TestChaosBatchGracefulDegradation is the graceful-degradation proof for
// the dispatch tier: a 100-cell batch runs under a seeded storm of
// transport faults — worker kills, stalls, corrupted frames, delayed
// replies — and must still complete with results bit-identical to a
// fault-free run, no cell lost or duplicated, inside a bounded wall-clock
// budget, with every retry/restart/breaker event visible in a /metrics
// exposition that ValidateProm accepts.
func TestChaosBatchGracefulDegradation(t *testing.T) {
	srcs := chaosSources()
	policies := []string{"unsafe", "fence", "delay", "levioso"}
	type cellSpec struct {
		prog   *isa.Program
		policy string
	}
	var specs []cellSpec
	for _, src := range srcs {
		prog, _, err := engine.Compile("chaos.lc", src, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range policies {
			for rep := 0; rep < 5; rep++ { // 5×4×5 = 100 cells, repeats exercise the cache
				specs = append(specs, cellSpec{prog, pol})
			}
		}
	}
	if len(specs) != 100 {
		t.Fatalf("batch size %d, want 100", len(specs))
	}

	// Fault-free ground truth, one engine.Run per distinct (program, policy).
	truth := make(map[*isa.Program]map[string]*engine.Result)
	for _, sp := range specs {
		if truth[sp.prog] == nil {
			truth[sp.prog] = make(map[string]*engine.Result)
		}
		if truth[sp.prog][sp.policy] == nil {
			want, err := engine.Run(context.Background(), engine.Request{
				Name: "chaos.lc", Program: sp.prog, Verify: true,
				Overrides: engine.Overrides{Policy: sp.policy},
			})
			if err != nil {
				t.Fatal(err)
			}
			truth[sp.prog][sp.policy] = want
		}
	}

	// The storm: every transport failure mode armed, seeded, front-loaded
	// on the first 150 calls so the run provably drains.
	ti := NewTransport(TransportPlan{
		Seed: 42,
		Faults: []TransportFault{
			{Kind: WorkerKill, Prob: 0.10, FirstCalls: 150},
			{Kind: WorkerStall, Prob: 0.05, FirstCalls: 150, Delay: 20 * time.Millisecond},
			{Kind: CorruptResponse, Prob: 0.10, FirstCalls: 150},
			{Kind: DelayReply, Prob: 0.15, FirstCalls: 150, Delay: 5 * time.Millisecond},
		},
	})
	reg := obs.NewRegistry()
	co, err := dispatch.New(context.Background(), dispatch.Config{
		Workers:          4,
		Spawn:            ti.Spawner(dispatch.Pipe()),
		MaxAttempts:      8,
		Backoff:          2 * time.Millisecond,
		HedgeAfter:       250 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Millisecond,
		CrashLoopBudget:  50,
		QueueDepth:       -1,
		Registry:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// Bounded completion: the storm is finite and backoffs are small, so
	// the whole batch must drain well inside the budget.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	results := make([]*engine.Result, len(specs))
	errs := make([]error, len(specs))
	done := make(chan int)
	for i, sp := range specs {
		go func(i int, sp cellSpec) {
			results[i], errs[i] = co.Execute(ctx, &dispatch.Cell{
				Name: "chaos.lc", Program: sp.prog, Verify: true,
				Overrides: engine.Overrides{Policy: sp.policy},
			})
			done <- i
		}(i, sp)
	}
	seen := make(map[int]bool)
	for range specs {
		i := <-done
		if seen[i] {
			t.Fatalf("cell %d reported twice", i)
		}
		seen[i] = true
	}
	elapsed := time.Since(start)

	// Zero wrong results: every cell completed, bit-identical to truth.
	for i, sp := range specs {
		if errs[i] != nil {
			t.Fatalf("cell %d failed under chaos: %v", i, errs[i])
		}
		want := truth[sp.prog][sp.policy]
		got := results[i]
		if got.ExitCode != want.ExitCode || got.Output != want.Output || got.Stats != want.Stats {
			t.Fatalf("cell %d (%s) diverged from fault-free run:\n got=%+v\nwant=%+v",
				i, sp.policy, got, want)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("%d cells completed, want 100", len(seen))
	}

	// The storm actually happened, and the resilience machinery shows it.
	fired := ti.Fired()
	var total uint64
	for _, n := range fired {
		total += n
	}
	if total == 0 {
		t.Fatalf("no faults fired — chaos test proved nothing: %v", fired)
	}
	st := co.Snapshot()
	if st.Retries == 0 && st.Hedges == 0 {
		t.Fatalf("faults fired (%v) but no retries or hedges recorded: %+v", fired, st)
	}
	if fired["worker-kill"] > 0 && st.Restarts == 0 {
		t.Fatalf("workers were killed but never restarted: %+v", st)
	}
	t.Logf("chaos: %v faults, %d retries, %d restarts, %d breaker trips, %v elapsed",
		fired, st.Retries, st.Restarts, st.BreakerTrips, elapsed)

	// The whole story is on /metrics, and the exposition is well-formed.
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	families, err := obs.ValidateProm(&buf)
	if err != nil {
		t.Fatalf("metrics exposition invalid: %v", err)
	}
	for _, name := range []string{
		"dispatch_cells_total", "dispatch_retries_total", "dispatch_worker_restarts_total",
		"dispatch_breaker_trips_total", "dispatch_shed_total", "dispatch_queue_depth",
	} {
		if _, ok := families[name]; !ok {
			t.Errorf("metric family %s missing from exposition", name)
		}
	}
}
