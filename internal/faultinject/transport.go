package faultinject

import (
	"context"
	"sync"
	"time"

	"math/rand"

	"levioso/internal/dispatch"
	"levioso/internal/engine"
	"levioso/internal/simerr"
)

// TransportKind selects a dispatch-transport fault mechanism — the failure
// modes a coordinator sees from a real worker fleet, injected between the
// coordinator and an otherwise healthy worker.
type TransportKind int

const (
	// WorkerKill kills the worker mid-call: the result never arrives and
	// the coordinator must restart the worker and replay the cell.
	WorkerKill TransportKind = iota
	// WorkerStall hangs the call until the caller's context gives up (or
	// Delay elapses, when set) — a wedged process that is alive but mute.
	WorkerStall
	// CorruptResponse completes the real work, then destroys the reply in
	// flight: the coordinator sees a corrupt/truncated frame, exactly the
	// typed transport error the wire client produces for garbage bytes.
	CorruptResponse
	// DelayReply completes the call, then sits on the reply for Delay — a
	// slow network/pipe, food for hedging and Retry-After calibration.
	DelayReply
)

func (k TransportKind) String() string {
	switch k {
	case WorkerKill:
		return "worker-kill"
	case WorkerStall:
		return "worker-stall"
	case CorruptResponse:
		return "corrupt-response"
	case DelayReply:
		return "delay-reply"
	default:
		return "invalid"
	}
}

// TransportFault is one armed transport fault.
type TransportFault struct {
	Kind TransportKind
	// Prob is the per-Execute fire probability (seeded PRNG).
	Prob float64
	// FirstCalls arms the fault only on the first N Execute calls through
	// the plan (0 = every call) — the knob for fault storms that die down,
	// letting a bounded-completion-time chaos run provably drain.
	FirstCalls uint64
	// Delay bounds WorkerStall and sizes DelayReply. Zero means: stall
	// until the context gives up; delay replies by 1ms.
	Delay time.Duration
}

// TransportPlan is a reproducible storm of transport faults for one
// coordinator. The PRNG is seeded, so a given (plan, cell schedule) is as
// reproducible as goroutine interleaving allows — and the chaos oracle does
// not depend on *which* calls fault, only that every cell still completes
// with the fault-free answer.
type TransportPlan struct {
	Seed   int64
	Faults []TransportFault
}

// TransportInjector applies one TransportPlan to every worker a spawner
// produces. Shared across the fleet: the call counter and PRNG are global
// to the plan, so FirstCalls windows span workers.
type TransportInjector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults []TransportFault
	calls  uint64
	fired  map[TransportKind]uint64
}

// NewTransport builds the injector for one coordinator's lifetime.
func NewTransport(plan TransportPlan) *TransportInjector {
	return &TransportInjector{
		rng:    rand.New(rand.NewSource(plan.Seed)),
		faults: plan.Faults,
		fired:  make(map[TransportKind]uint64),
	}
}

// Spawner wraps sp so every worker it produces — including coordinator
// restarts — runs behind the fault plan.
func (ti *TransportInjector) Spawner(sp dispatch.Spawner) dispatch.Spawner {
	return func(ctx context.Context) (dispatch.Worker, error) {
		w, err := sp(ctx)
		if err != nil {
			return nil, err
		}
		return &faultyWorker{Worker: w, ti: ti}, nil
	}
}

// Fired reports how many times each fault kind has fired, by kind name —
// chaos tests assert the storm actually happened.
func (ti *TransportInjector) Fired() map[string]uint64 {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	out := make(map[string]uint64, len(ti.fired))
	for k, n := range ti.fired {
		out[k.String()] = n
	}
	return out
}

// pick rolls the dice for one Execute call. At most one fault fires per
// call (first armed match wins).
func (ti *TransportInjector) pick() (TransportFault, bool) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ti.calls++
	for _, f := range ti.faults {
		if f.FirstCalls != 0 && ti.calls > f.FirstCalls {
			continue
		}
		if ti.rng.Float64() < f.Prob {
			ti.fired[f.Kind]++
			return f, true
		}
	}
	return TransportFault{}, false
}

// faultyWorker interposes on Execute; Ping and lifecycle pass through.
type faultyWorker struct {
	dispatch.Worker
	ti *TransportInjector
}

func (w *faultyWorker) Execute(ctx context.Context, c *dispatch.Cell) (*engine.Result, error) {
	f, fire := w.ti.pick()
	if !fire {
		return w.Worker.Execute(ctx, c)
	}
	switch f.Kind {
	case WorkerKill:
		w.Worker.Kill()
		return nil, simerr.New(simerr.KindTransport, "faultinject: worker killed mid-call")
	case WorkerStall:
		var timeout <-chan time.Time
		if f.Delay > 0 {
			t := time.NewTimer(f.Delay)
			defer t.Stop()
			timeout = t.C
		}
		select {
		case <-ctx.Done():
		case <-timeout:
		}
		return nil, simerr.New(simerr.KindTransport, "faultinject: worker stalled")
	case CorruptResponse:
		// Burn the real work — the worker did answer; the bytes died.
		if _, err := w.Worker.Execute(ctx, c); err != nil && !simerr.Transient(err) {
			// Don't mask a permanent cell failure behind a retryable
			// transport error: the retries would just re-fail.
			return nil, err
		}
		return nil, simerr.New(simerr.KindTransport, "faultinject: corrupt frame from worker")
	case DelayReply:
		res, err := w.Worker.Execute(ctx, c)
		d := f.Delay
		if d <= 0 {
			d = time.Millisecond
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, simerr.New(simerr.KindTransport, "faultinject: reply delayed past caller: %v", ctx.Err())
		}
		return res, err
	}
	return w.Worker.Execute(ctx, c)
}
