package faultinject

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// NetKind selects a network fault mechanism — the failure modes a
// coordinator sees from a real multi-host fleet, injected as a net.Conn
// decorator between the dispatcher and an otherwise healthy TCP worker.
type NetKind int

const (
	// ConnKill closes the connection mid-operation: socket death, the
	// remote-transport analogue of WorkerKill.
	ConnKill NetKind = iota
	// NetLatency delays the operation by Delay (+ up to Jitter, seeded) —
	// a slow link, food for hedging and heartbeat tuning.
	NetLatency
	// PartialWrite delivers only half the frame and then kills the
	// connection while reporting the write as fully successful — TCP's
	// classic lie, where write() returns long before the peer receives.
	PartialWrite
	// CorruptFrame flips one byte of the payload to NUL. NUL is invalid
	// anywhere in NDJSON — inside strings (control character) and between
	// tokens alike — so corruption is always *detected*, never a
	// valid-but-wrong frame that would poison a bit-identical assertion.
	CorruptFrame
	// NetPartition silently drops the peer: subsequent writes claim
	// success, reads block until the connection is closed. Only the
	// heartbeat watchdog can see this one.
	NetPartition
)

func (k NetKind) String() string {
	switch k {
	case ConnKill:
		return "conn-kill"
	case NetLatency:
		return "latency"
	case PartialWrite:
		return "partial-write"
	case CorruptFrame:
		return "corrupt-frame"
	case NetPartition:
		return "partition"
	default:
		return "invalid"
	}
}

// NetFault is one armed network fault.
type NetFault struct {
	Kind NetKind
	// Prob is the per-operation (Read/Write) fire probability.
	Prob float64
	// FirstOps arms the fault only on the first N conn operations through
	// the plan (0 = every op) — the storm-that-dies-down knob that lets a
	// bounded-completion-time chaos run provably drain.
	FirstOps uint64
	// Delay sizes NetLatency; Jitter adds up to this much more (seeded).
	Delay  time.Duration
	Jitter time.Duration
}

// NetPlan is a reproducible storm of network faults for one fleet. The PRNG
// is seeded; the op counter is global to the plan, so FirstOps windows span
// every connection the fleet dials.
type NetPlan struct {
	Seed   int64
	Faults []NetFault
}

// NetInjector applies one NetPlan to every connection passed through Wrap —
// the dispatch.RemoteConfig.WrapConn seam.
type NetInjector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults []NetFault
	ops    uint64
	fired  map[NetKind]uint64
}

// NewNet builds the injector for one fleet's lifetime.
func NewNet(plan NetPlan) *NetInjector {
	return &NetInjector{
		rng:    rand.New(rand.NewSource(plan.Seed)),
		faults: plan.Faults,
		fired:  make(map[NetKind]uint64),
	}
}

// Wrap decorates one connection with the fault plan.
func (ni *NetInjector) Wrap(conn net.Conn) net.Conn {
	return &faultyConn{Conn: conn, ni: ni, cut: make(chan struct{})}
}

// Fired reports how many times each fault kind has fired, by kind name.
func (ni *NetInjector) Fired() map[string]uint64 {
	ni.mu.Lock()
	defer ni.mu.Unlock()
	out := make(map[string]uint64, len(ni.fired))
	for k, n := range ni.fired {
		out[k.String()] = n
	}
	return out
}

// pick rolls the dice for one conn operation. At most one fault fires per
// op (first armed match wins); write selects whether write-only faults are
// eligible.
func (ni *NetInjector) pick(write bool) (NetFault, bool) {
	ni.mu.Lock()
	defer ni.mu.Unlock()
	ni.ops++
	for _, f := range ni.faults {
		if f.Kind == PartialWrite && !write {
			continue
		}
		if f.FirstOps != 0 && ni.ops > f.FirstOps {
			continue
		}
		if ni.rng.Float64() < f.Prob {
			ni.fired[f.Kind]++
			return f, true
		}
	}
	return NetFault{}, false
}

// index picks a seeded corruption offset in [0, n).
func (ni *NetInjector) index(n int) int {
	ni.mu.Lock()
	defer ni.mu.Unlock()
	return ni.rng.Intn(n)
}

// sleep serves a latency fault's delay.
func (ni *NetInjector) sleep(f NetFault) {
	d := f.Delay
	if f.Jitter > 0 {
		ni.mu.Lock()
		d += time.Duration(ni.rng.Int63n(int64(f.Jitter)))
		ni.mu.Unlock()
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// faultyConn interposes on Read/Write; the rest of net.Conn passes through.
// A partition is a latch: once tripped, writes succeed into the void and
// reads block until Close — exactly the silence only a heartbeat watchdog
// can diagnose.
type faultyConn struct {
	net.Conn
	ni          *NetInjector
	partitioned atomic.Bool
	closeOnce   sync.Once
	cut         chan struct{}
}

func (c *faultyConn) Read(b []byte) (int, error) {
	if c.partitioned.Load() {
		return c.blockUntilClosed()
	}
	f, fire := c.ni.pick(false)
	if fire {
		switch f.Kind {
		case ConnKill:
			c.Close()
			return 0, fmt.Errorf("faultinject: connection killed on read")
		case NetLatency:
			c.ni.sleep(f)
		case NetPartition:
			c.partitioned.Store(true)
			return c.blockUntilClosed()
		}
	}
	n, err := c.Conn.Read(b)
	if fire && f.Kind == CorruptFrame && n > 0 {
		b[c.ni.index(n)] = 0x00
	}
	return n, err
}

func (c *faultyConn) Write(b []byte) (int, error) {
	if c.partitioned.Load() {
		return len(b), nil
	}
	f, fire := c.ni.pick(true)
	if !fire {
		return c.Conn.Write(b)
	}
	switch f.Kind {
	case ConnKill:
		c.Close()
		return 0, fmt.Errorf("faultinject: connection killed on write")
	case NetLatency:
		c.ni.sleep(f)
		return c.Conn.Write(b)
	case PartialWrite:
		if half := len(b) / 2; half > 0 {
			c.Conn.Write(b[:half])
		}
		c.Close()
		return len(b), nil // the lie: the caller believes the frame shipped
	case CorruptFrame:
		cp := append([]byte(nil), b...)
		if len(cp) > 0 {
			cp[c.ni.index(len(cp))] = 0x00
		}
		return c.Conn.Write(cp)
	case NetPartition:
		c.partitioned.Store(true)
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// blockUntilClosed parks a partitioned read until someone closes the
// connection (the coordinator's watchdog does, via Kill).
func (c *faultyConn) blockUntilClosed() (int, error) {
	<-c.cut
	return 0, net.ErrClosed
}

func (c *faultyConn) Close() error {
	c.closeOnce.Do(func() { close(c.cut) })
	return c.Conn.Close()
}

// ParseNetSpec parses a network fault plan from the shared -inject flag
// grammar — semicolon-separated faults, each a kind with optional
// colon-separated key=value parameters:
//
//	kind[:key=value[:key=value...]][;kind...]
//
// Kinds: conn-kill, latency, partial-write, corrupt-frame, partition.
// Keys: prob, first, delay, jitter (durations use time.ParseDuration).
//
// Example: "conn-kill:prob=0.05:first=200;latency:prob=0.2:delay=5ms".
// Returns nil for an empty spec.
func ParseNetSpec(spec string, seed int64) (*NetPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &NetPlan{Seed: seed}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseNetFault(part)
		if err != nil {
			return nil, fmt.Errorf("faultinject: net fault spec %q: %w", part, err)
		}
		plan.Faults = append(plan.Faults, f)
	}
	if len(plan.Faults) == 0 {
		return nil, nil
	}
	return plan, nil
}

func parseNetFault(s string) (NetFault, error) {
	fields := strings.Split(s, ":")
	f := NetFault{Prob: 1}
	switch fields[0] {
	case "conn-kill":
		f.Kind = ConnKill
	case "latency":
		f.Kind = NetLatency
	case "partial-write":
		f.Kind = PartialWrite
	case "corrupt-frame":
		f.Kind = CorruptFrame
	case "partition":
		f.Kind = NetPartition
	default:
		return f, fmt.Errorf("unknown net fault kind %q", fields[0])
	}
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return f, fmt.Errorf("parameter %q is not key=value", kv)
		}
		var err error
		switch key {
		case "prob":
			f.Prob, err = strconv.ParseFloat(val, 64)
		case "first":
			var n uint64
			n, err = strconv.ParseUint(val, 0, 64)
			f.FirstOps = n
		case "delay":
			f.Delay, err = time.ParseDuration(val)
		case "jitter":
			f.Jitter, err = time.ParseDuration(val)
		default:
			return f, fmt.Errorf("unknown parameter %q", key)
		}
		if err != nil {
			return f, fmt.Errorf("parameter %s: %w", key, err)
		}
	}
	return f, nil
}
