// Package faultinject injects deterministic, seeded faults into a simulated
// core by wrapping the services it consumes — the memory hierarchy and the
// branch predictor (cpu.Config.WrapMem / WrapPred) — and by hooking the
// commit stage (cpu.Config.CommitStall). It exists to prove, in tests, that
// the core's safety nets (watchdog, cycle limit) and the sweep supervisor's
// classification and retry logic actually fire: a commit stall or stuck
// cache response must surface as simerr.ErrWatchdog, a planned panic as a
// recovered simerr.ErrPanic, and a mispredict storm must only cost cycles.
//
// Faults are windows over simulated cycles, so a given (plan, program,
// configuration) triple reproduces exactly; the only randomness is a seeded
// PRNG used by probabilistic faults.
package faultinject

import (
	"fmt"
	"math/rand"

	"levioso/internal/cpu"
)

// Kind selects a fault mechanism.
type Kind int

const (
	// StuckLoad makes data loads of matching lines effectively never
	// complete: the response latency becomes astronomically large, the load
	// at the window head cannot retire, and the core's watchdog fires.
	StuckLoad Kind = iota
	// DelayFill adds Extra cycles to every data-load access in the window —
	// a degraded, not broken, memory system. Runs complete with more cycles.
	DelayFill
	// MispredictStorm flips each conditional-branch direction prediction
	// with probability Prob (seeded PRNG), forcing wrong-path execution and
	// recovery storms.
	MispredictStorm
	// CommitStall freezes the commit stage for the window. A window longer
	// than the watchdog threshold deadlocks the run; a shorter one only
	// costs cycles.
	CommitStall
	// Panic panics the simulation goroutine when the window opens, for
	// supervisor panic-recovery tests.
	Panic
)

func (k Kind) String() string {
	switch k {
	case StuckLoad:
		return "stuck-load"
	case DelayFill:
		return "delay-fill"
	case MispredictStorm:
		return "mispredict-storm"
	case CommitStall:
		return "commit-stall"
	case Panic:
		return "panic"
	default:
		return "invalid"
	}
}

// lineShift aliases the 64-byte line size used by every default cache level;
// StuckLoad matches at line granularity so a faulted address traps the
// neighbouring accesses a real stuck fill would.
const lineShift = 6

// stuckLatency is far beyond any watchdog threshold while staying safely
// clear of uint64 cycle arithmetic overflow.
const stuckLatency = 1 << 40

// Fault is one injected fault, armed over a window of simulated cycles.
type Fault struct {
	Kind  Kind
	Start uint64 // first cycle the fault is armed
	End   uint64 // first cycle it is disarmed; 0 means forever

	Addr  uint64  // StuckLoad: match this line only; 0 matches every load
	Extra int     // DelayFill: added cycles per access
	Prob  float64 // MispredictStorm: per-prediction flip probability

	// FirstAttempts arms the fault only on the first N attempts of a
	// supervised run (0 = every attempt) — the knob for transient faults
	// that a retry should clear.
	FirstAttempts int
}

// Plan is a reproducible set of faults for one run.
type Plan struct {
	Seed   int64
	Faults []Fault
}

// Injector applies one Plan to one core attempt. It is stateful (cycle
// tracking, PRNG) and must not be shared across cores or attempts; build a
// fresh one per attempt with New.
type Injector struct {
	faults []Fault
	rng    *rand.Rand
	cycle  uint64
}

// New builds an injector for one run attempt (1-based), dropping faults
// whose FirstAttempts window has passed.
func New(plan Plan, attempt int) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(plan.Seed))}
	for _, f := range plan.Faults {
		if f.FirstAttempts == 0 || attempt <= f.FirstAttempts {
			in.faults = append(in.faults, f)
		}
	}
	return in
}

// Attach wires the injector into a core configuration. The CommitStall hook
// doubles as the injector's cycle clock: the core consults it first thing
// every cycle, before any wrapped memory or predictor call of that cycle.
func (in *Injector) Attach(cfg *cpu.Config) {
	cfg.WrapMem = in.wrapMem
	cfg.WrapPred = in.wrapPred
	cfg.CommitStall = in.commitStall
}

func (in *Injector) active(f Fault) bool {
	return in.cycle >= f.Start && (f.End == 0 || in.cycle < f.End)
}

func (in *Injector) commitStall(cycle uint64) bool {
	in.cycle = cycle
	stalled := false
	for _, f := range in.faults {
		if !in.active(f) {
			continue
		}
		switch f.Kind {
		case CommitStall:
			stalled = true
		case Panic:
			panic(fmt.Sprintf("faultinject: planned panic at cycle %d", cycle))
		}
	}
	return stalled
}

func (in *Injector) loadLatency(addr uint64, lat int) int {
	for _, f := range in.faults {
		if !in.active(f) {
			continue
		}
		switch f.Kind {
		case StuckLoad:
			if f.Addr == 0 || f.Addr>>lineShift == addr>>lineShift {
				return stuckLatency
			}
		case DelayFill:
			lat += f.Extra
		}
	}
	return lat
}

func (in *Injector) flipPrediction() bool {
	for _, f := range in.faults {
		if in.active(f) && f.Kind == MispredictStorm && in.rng.Float64() < f.Prob {
			return true
		}
	}
	return false
}

// memSystem interposes on data-load latencies; everything else forwards to
// the embedded real hierarchy.
type memSystem struct {
	cpu.MemSystem
	in *Injector
}

func (in *Injector) wrapMem(ms cpu.MemSystem) cpu.MemSystem {
	return &memSystem{MemSystem: ms, in: in}
}

func (m *memSystem) LoadLatency(addr uint64) int {
	return m.in.loadLatency(addr, m.MemSystem.LoadLatency(addr))
}

func (m *memSystem) InvisibleLoadLatency(addr uint64) int {
	return m.in.loadLatency(addr, m.MemSystem.InvisibleLoadLatency(addr))
}

// predictor interposes on conditional direction predictions.
type predictor struct {
	cpu.BranchPredictor
	in *Injector
}

func (in *Injector) wrapPred(p cpu.BranchPredictor) cpu.BranchPredictor {
	return &predictor{BranchPredictor: p, in: in}
}

func (p *predictor) PredictBranch(pc uint64) (bool, int) {
	taken, idx := p.BranchPredictor.PredictBranch(pc)
	if p.in.flipPrediction() {
		taken = !taken
	}
	return taken, idx
}
