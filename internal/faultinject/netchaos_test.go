package faultinject

import (
	"bytes"
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"levioso/internal/dispatch"
	"levioso/internal/engine"
	"levioso/internal/isa"
	"levioso/internal/obs"
)

// TestNetChaosBatchBitIdentical is the multi-host analogue of
// TestChaosBatchGracefulDegradation: a 100-cell batch dispatched to two
// worker daemons over real loopback TCP, under a seeded storm of connection
// kills, silent partitions, corrupted frames, and link latency, must still
// complete bit-identical to a fault-free run — no hung calls, no leaked
// goroutines, every counter visible in a ValidateProm-clean exposition.
func TestNetChaosBatchBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos test in -short mode")
	}
	baseline := runtime.NumGoroutine()

	srcs := chaosSources()
	policies := []string{"unsafe", "fence", "delay", "levioso"}
	type cellSpec struct {
		prog   *isa.Program
		policy string
	}
	var specs []cellSpec
	for _, src := range srcs {
		prog, _, err := engine.Compile("netchaos.lc", src, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range policies {
			for rep := 0; rep < 5; rep++ { // 5×4×5 = 100 cells; repeats feed cache + dedup
				specs = append(specs, cellSpec{prog, pol})
			}
		}
	}
	if len(specs) != 100 {
		t.Fatalf("batch size %d, want 100", len(specs))
	}

	// Fault-free ground truth.
	truth := make(map[*isa.Program]map[string]*engine.Result)
	for _, sp := range specs {
		if truth[sp.prog] == nil {
			truth[sp.prog] = make(map[string]*engine.Result)
		}
		if truth[sp.prog][sp.policy] == nil {
			want, err := engine.Run(context.Background(), engine.Request{
				Name: "netchaos.lc", Program: sp.prog, Verify: true,
				Overrides: engine.Overrides{Policy: sp.policy},
			})
			if err != nil {
				t.Fatal(err)
			}
			truth[sp.prog][sp.policy] = want
		}
	}

	// Two worker daemons on loopback, fast heartbeats so partitions are
	// detected quickly.
	dctx, dcancel := context.WithCancel(context.Background())
	var addrs []string
	var daemons []chan struct{}
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		done := make(chan struct{})
		daemons = append(daemons, done)
		go func(ln net.Listener) {
			defer close(done)
			dispatch.ListenWorkers(dctx, ln, dispatch.ListenOptions{
				HeartbeatInterval: 25 * time.Millisecond,
			})
		}(ln)
	}
	stopDaemons := func() {
		dcancel()
		for _, done := range daemons {
			select {
			case <-done:
			case <-time.After(15 * time.Second):
				t.Error("worker daemon did not drain")
			}
		}
	}
	defer stopDaemons()

	// The storm: socket death, silent partitions, corrupted frames, and
	// link latency, front-loaded on the first operations so the run
	// provably drains.
	ni := NewNet(NetPlan{
		Seed: 42,
		Faults: []NetFault{
			{Kind: ConnKill, Prob: 0.05, FirstOps: 400},
			{Kind: NetPartition, Prob: 0.02, FirstOps: 200},
			{Kind: CorruptFrame, Prob: 0.08, FirstOps: 400},
			{Kind: NetLatency, Prob: 0.15, FirstOps: 600, Delay: time.Millisecond, Jitter: 2 * time.Millisecond},
		},
	})
	reg := obs.NewRegistry()
	fleet, err := dispatch.NewRemote(dispatch.RemoteConfig{
		DialTimeout:      2 * time.Second,
		RedialBackoff:    2 * time.Millisecond,
		RedialMax:        50 * time.Millisecond,
		HeartbeatTimeout: 250 * time.Millisecond,
		Seed:             42,
		WrapConn:         ni.Wrap,
		Registry:         reg,
	}, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	co, err := dispatch.New(context.Background(), dispatch.Config{
		Workers:          4,
		Spawn:            fleet.Spawner(),
		MaxAttempts:      10,
		Backoff:          2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Millisecond,
		CrashLoopBudget:  200,
		QueueDepth:       -1,
		Registry:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// Bounded completion: partitions cost one heartbeat timeout each and
	// the storm windows are finite, so the batch must drain well inside
	// the budget — a hung call fails this loudly.
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	start := time.Now()
	results := make([]*engine.Result, len(specs))
	errs := make([]error, len(specs))
	done := make(chan int)
	for i, sp := range specs {
		go func(i int, sp cellSpec) {
			results[i], errs[i] = co.Execute(ctx, &dispatch.Cell{
				Name: "netchaos.lc", Program: sp.prog, Verify: true,
				Overrides: engine.Overrides{Policy: sp.policy},
			})
			done <- i
		}(i, sp)
	}
	for range specs {
		<-done
	}
	elapsed := time.Since(start)

	// Zero wrong results: every cell completed, bit-identical to truth —
	// in particular no corrupted frame ever produced a plausible answer.
	for i, sp := range specs {
		if errs[i] != nil {
			t.Fatalf("cell %d failed under network chaos: %v", i, errs[i])
		}
		want := truth[sp.prog][sp.policy]
		got := results[i]
		if got.ExitCode != want.ExitCode || got.Output != want.Output || got.Stats != want.Stats {
			t.Fatalf("cell %d (%s) diverged from fault-free run:\n got=%+v\nwant=%+v",
				i, sp.policy, got, want)
		}
	}

	// The storm actually happened and the lifecycle machinery shows it.
	fired := ni.Fired()
	var total uint64
	for _, n := range fired {
		total += n
	}
	if total == 0 {
		t.Fatalf("no network faults fired — chaos test proved nothing: %v", fired)
	}
	st := co.Snapshot()
	if st.Retries == 0 && st.Restarts == 0 {
		t.Fatalf("faults fired (%v) but no retries or restarts recorded: %+v", fired, st)
	}
	var dials, partitions uint64
	for _, p := range fleet.Peers() {
		dials += p.Dials
		partitions += p.Partitions
	}
	if dials < 2 {
		t.Fatalf("fewer than 2 dials recorded across peers: %+v", fleet.Peers())
	}
	if fired["partition"] > 0 && partitions == 0 {
		t.Errorf("partitions were injected (%d) but none detected by the watchdog", fired["partition"])
	}
	t.Logf("netchaos: %v faults, %d retries, %d restarts, %d breaker trips, %d dials, %d partitions, %v elapsed",
		fired, st.Retries, st.Restarts, st.BreakerTrips, dials, partitions, elapsed)

	// The whole story is on /metrics, well-formed.
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	families, err := obs.ValidateProm(&buf)
	if err != nil {
		t.Fatalf("metrics exposition invalid: %v", err)
	}
	for _, name := range []string{
		"dispatch_remote_dials_total", "dispatch_remote_connected",
		"dispatch_remote_heartbeats_total", "dispatch_dedup_hits_total",
		"dispatch_cells_total", "dispatch_retries_total",
	} {
		if _, ok := families[name]; !ok {
			t.Errorf("metric family %s missing from exposition", name)
		}
	}

	// No leaked goroutines: tear everything down and expect the count to
	// return near baseline (lenient — runtime pollers come and go).
	co.Close()
	stopDaemons()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
