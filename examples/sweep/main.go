// Sensitivity-sweep demo: overhead of each defense on one workload as the
// out-of-order window (ROB) grows. Bigger windows mean more instructions live
// under unresolved branches, so conservative defenses get *more* expensive
// while Levioso tracks only true dependencies.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"levioso/internal/cpu"
	"levioso/internal/secure"
	"levioso/internal/workloads"
)

func main() {
	w, ok := workloads.ByName("pchase")
	if !ok {
		log.Fatal("workload not found")
	}
	prog := w.MustBuild(workloads.SizeTest)
	// The headline evaluation set, baseline first (the registry guarantees
	// the order): conservative defenses get more expensive with window size,
	// Levioso and the secret-typed prospect do not.
	policies := secure.EvalNames()

	fmt.Printf("%-6s", "ROB")
	for _, p := range policies {
		fmt.Printf("  %12s", p)
	}
	fmt.Printf("   (cycles; overhead vs %s)\n", policies[0])
	for _, rob := range []int{64, 128, 192, 320} {
		cfg := cpu.DefaultConfig()
		cfg.ROBSize = rob
		cfg.IQSize = rob / 3
		cfg.LQSize = rob / 4
		cfg.SQSize = rob / 6
		cfg.NumPhysRegs = 32 + rob + 64
		cfg.MaxCycles = 200_000_000
		var base uint64
		fmt.Printf("%-6d", rob)
		for _, p := range policies {
			c, err := cpu.New(prog, cfg, secure.MustNew(p))
			if err != nil {
				log.Fatal(err)
			}
			res, err := c.Run()
			if err != nil {
				log.Fatal(err)
			}
			if p == policies[0] {
				base = res.Stats.Cycles
				fmt.Printf("  %12d", res.Stats.Cycles)
			} else {
				ov := float64(res.Stats.Cycles)/float64(base) - 1
				fmt.Printf("  %6d %4.0f%%", res.Stats.Cycles, 100*ov)
			}
		}
		fmt.Println()
	}
}
