// Sensitivity-sweep demo: overhead of each defense on one workload as the
// out-of-order window (ROB) grows. Bigger windows mean more instructions live
// under unresolved branches, so conservative defenses get *more* expensive
// while Levioso tracks only true dependencies.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"levioso/internal/cpu"
	"levioso/internal/secure"
	"levioso/internal/workloads"
)

func main() {
	w, ok := workloads.ByName("pchase")
	if !ok {
		log.Fatal("workload not found")
	}
	prog := w.MustBuild(workloads.SizeTest)
	policies := []string{"unsafe", "delay", "levioso"}

	fmt.Printf("%-6s", "ROB")
	for _, p := range policies {
		fmt.Printf("  %12s", p)
	}
	fmt.Println("   (cycles; overhead vs unsafe)")
	for _, rob := range []int{64, 128, 192, 320} {
		cfg := cpu.DefaultConfig()
		cfg.ROBSize = rob
		cfg.IQSize = rob / 3
		cfg.LQSize = rob / 4
		cfg.SQSize = rob / 6
		cfg.NumPhysRegs = 32 + rob + 64
		cfg.MaxCycles = 200_000_000
		var base uint64
		fmt.Printf("%-6d", rob)
		for _, p := range policies {
			c, err := cpu.New(prog, cfg, secure.MustNew(p))
			if err != nil {
				log.Fatal(err)
			}
			res, err := c.Run()
			if err != nil {
				log.Fatal(err)
			}
			if p == "unsafe" {
				base = res.Stats.Cycles
				fmt.Printf("  %12d", res.Stats.Cycles)
			} else {
				ov := float64(res.Stats.Cycles)/float64(base) - 1
				fmt.Printf("  %6d %4.0f%%", res.Stats.Cycles, 100*ov)
			}
		}
		fmt.Println()
	}
}
