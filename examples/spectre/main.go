// Spectre-v1 end-to-end demo: a bounds-check-bypass attack (training, bound
// flush, transient out-of-bounds access, flush+reload probe) runs inside the
// simulated machine against each secure-speculation policy. Under `unsafe`
// the attacker recovers every secret byte; under every defense the probe
// comes back empty.
//
//	go run ./examples/spectre
package main

import (
	"fmt"
	"log"

	"levioso/internal/attack"
	"levioso/internal/secure"
)

func main() {
	secrets := []byte{'L', 'E', 'V'}
	fmt.Println("Spectre-v1 bounds-check bypass, per policy:")
	fmt.Println()
	outcomes, err := attack.Run(secure.EvalNames(), secrets)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outcomes {
		status := "blocked"
		if o.V1Leaks() {
			status = "LEAKED"
		}
		fmt.Printf("  %-10s recovered %d/%d secret bytes  -> %s\n",
			o.Policy, o.V1Correct, o.V1Trials, status)
	}
	fmt.Println()
	fmt.Println("The attack gadget is `if (idx < bound) y = oracle[array[idx]*64]`.")
	fmt.Println("Levioso blocks it because the transmitting load sits inside the")
	fmt.Println("bounds check's annotated control region, so it may not execute")
	fmt.Println("until that branch resolves — while loads elsewhere run freely.")
}
