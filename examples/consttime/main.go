// Constant-time-bypass demo (the paper's second threat model): the secret is
// loaded NON-speculatively into a register, and the victim's constant-time
// code never uses it as an address on any architecturally-reachable path. A
// mispredicted branch transiently steers execution into a benign "dump" path
// with the secret still in the register.
//
// This is the attack that separates *comprehensive* defenses from sandbox-only
// taint tracking: STT-style tracking does not taint non-speculatively loaded
// data, so the transient dump transmits freely.
//
//	go run ./examples/consttime
package main

import (
	"fmt"
	"log"

	"levioso/internal/attack"
	"levioso/internal/secure"
)

func main() {
	fmt.Println("Spectre-CT (non-speculative secret) per policy:")
	fmt.Println()
	outcomes, err := attack.Run(secure.EvalNames(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outcomes {
		status := "blocked"
		if o.CTLeaks() {
			status = "LEAKED"
		}
		note := ""
		// The coverage contract, not the name, explains a leak: sandbox-only
		// policies block V1 yet pass the non-speculative secret through, and
		// secret-typed ones defend only declared secrets.
		if cov, err := secure.CoverageOf(o.Policy); err == nil && o.CTLeaks() && !o.V1Leaks() {
			note = fmt.Sprintf("  (blocks V1 but not CT: %s coverage)", cov)
		}
		fmt.Printf("  %-10s recovered %d/%d secret bytes  -> %s%s\n",
			o.Policy, o.CTCorrect, o.CTTrials, status, note)
	}
	fmt.Println()
	fmt.Println("Levioso blocks the dump because it is control-dependent on the")
	fmt.Println("mode branch: its transmit may not issue until the branch resolves,")
	fmt.Println("and on the correct path the dump is never reached.")
}
