// Quickstart: compile a small LevC program with the Levioso pass, run it on
// the out-of-order core under every policy in the registry's evaluation set,
// and compare cycles — the whole pipeline in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"levioso/internal/cpu"
	"levioso/internal/lang"
	"levioso/internal/secure"
)

const src = `
// Histogram with a data-dependent branch: the loads in each iteration are
// control-independent of the previous iteration's if — exactly the
// instructions Levioso lets run while a conservative defense stalls them.
var data[4096];
var hist[16];

func main() {
	var i;
	var s = 42;
	for (i = 0; i < 4096; i = i + 1) {
		s = s * 6364136223846793005 + 1442695040888963407;
		data[i] = (s >> 40) & 1023;
	}
	for (i = 0; i < 4096; i = i + 1) {
		var v = data[i];
		if (v & 1) {
			hist[v & 15] = hist[v & 15] + 1;
		}
	}
	var acc = 0;
	for (i = 0; i < 16; i = i + 1) { acc = acc + hist[i] * i; }
	print(acc);
	return 0;
}
`

func main() {
	// Compile: LevC -> LEV64 assembly -> binary image + Levioso annotations.
	prog, err := lang.Compile("quickstart.lc", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d instructions, %d annotated branches\n\n",
		len(prog.Text), len(prog.Hints))

	// Every policy in the headline evaluation set, baseline first.
	for _, policy := range secure.EvalNames() {
		c, err := cpu.New(prog, cpu.DefaultConfig(), secure.MustNew(policy))
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s cycles=%-8d ipc=%.2f output=%q restricted-transmitters=%d\n",
			policy, res.Stats.Cycles, res.Stats.IPC(), res.Output,
			res.Stats.RestrictedTransmitters)
	}
}
