// levdump inspects a LEV64 binary image: header, symbols, the Levioso
// annotation table, and a disassembly listing. The main is a thin adapter
// over the engine's Load step.
//
// Usage:
//
//	levdump [-syms] [-hints] [-d] prog.bin     (default: everything)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"levioso/internal/cli"
	"levioso/internal/engine"
	"levioso/internal/isa"
)

func main() {
	os.Exit(run())
}

func run() int {
	syms := flag.Bool("syms", false, "print the symbol table only")
	hints := flag.Bool("hints", false, "print the annotation table only")
	dis := flag.Bool("d", false, "print the disassembly only")
	flag.Parse()
	if flag.NArg() != 1 {
		return cli.Usage("levdump [-syms|-hints|-d] prog.bin")
	}
	img, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return cli.Fail("levdump", err)
	}
	prog, err := engine.Load(flag.Arg(0), img)
	if err != nil {
		return cli.Fail("levdump", err)
	}
	all := !*syms && !*hints && !*dis
	if all {
		fmt.Printf("entry:   %#x\n", prog.Entry)
		fmt.Printf("text:    %d instructions (%d bytes)\n", len(prog.Text), len(prog.Text)*isa.InstBytes)
		fmt.Printf("data:    %d bytes at %#x\n", len(prog.Data), isa.DataBase)
		fmt.Printf("symbols: %d\n", len(prog.Symbols))
		fmt.Printf("hints:   %d branch annotations\n\n", len(prog.Hints))
	}
	if all || *syms {
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return prog.Symbols[names[i]] < prog.Symbols[names[j]] })
		fmt.Println("symbols:")
		for _, n := range names {
			fmt.Printf("  %#08x  %s\n", prog.Symbols[n], n)
		}
		fmt.Println()
	}
	if all || *hints {
		pcs := make([]uint64, 0, len(prog.Hints))
		for pc := range prog.Hints {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		fmt.Println("annotations (branch pc -> reconvergence, region write set):")
		for _, pc := range pcs {
			h := prog.Hints[pc]
			if h.ReconvPC == 0 {
				fmt.Printf("  %#06x  CONSERVATIVE (no reconvergence)\n", pc)
				continue
			}
			fmt.Printf("  %#06x  reconv=%#06x  writes=%s\n", pc, h.ReconvPC, h.WriteSet)
		}
		fmt.Println()
	}
	if all || *dis {
		fmt.Print(engine.Listing(prog))
	}
	return 0
}
