// levsim runs a LEV64 binary on the out-of-order core under a chosen
// secure-speculation policy and reports performance statistics.
//
// Usage:
//
//	levsim [-policy levioso] [-rob 192] [-stats] [-ref] prog.bin
//	levsim -deadline 30s -journal runs.jsonl prog.bin
//
// With -ref the program runs on the functional reference model instead
// (useful for checking architectural behaviour). -deadline bounds the run's
// wall-clock time (a hung simulation exits with a typed deadline error
// instead of spinning forever); -journal records the completed run in a
// JSON-lines journal and skips the simulation entirely if the same
// (program, policy) pair is already recorded there.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"levioso/internal/cpu"
	"levioso/internal/harness"
	"levioso/internal/isa"
	"levioso/internal/prof"
	"levioso/internal/ref"
	"levioso/internal/secure"
	"levioso/internal/simerr"
)

func main() {
	os.Exit(run())
}

// run is the real main; funneling every exit through its return value lets
// the deferred profile flush (-cpuprofile/-memprofile) always happen.
func run() int {
	policy := flag.String("policy", "unsafe", fmt.Sprintf("secure-speculation policy %v", secure.Names()))
	rob := flag.Int("rob", 0, "override ROB size")
	maxCycles := flag.Uint64("max-cycles", 1_000_000_000, "cycle limit")
	showStats := flag.Bool("stats", false, "print detailed statistics")
	useRef := flag.Bool("ref", false, "run on the functional reference model instead")
	trace := flag.Bool("trace", false, "write a per-commit pipeline trace to stderr (slow)")
	deadline := flag.Duration("deadline", 0, "wall-clock bound on the simulation (0 = none)")
	journalPath := flag.String("journal", "", "record the run in this JSON-lines journal; skip if already recorded")
	profiles := prof.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: levsim [-policy P] [-rob N] [-stats] [-ref] prog.bin")
		return 2
	}
	if err := profiles.Start(); err != nil {
		return fail(err)
	}
	defer profiles.Stop()
	img, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return fail(err)
	}
	prog := new(isa.Program)
	if err := prog.UnmarshalBinary(img); err != nil {
		return fail(err)
	}
	if *useRef {
		res, err := ref.Run(prog, ref.Limits{})
		if err != nil {
			return fail(err)
		}
		fmt.Print(res.Output)
		fmt.Fprintf(os.Stderr, "levsim(ref): exit=%d insts=%d\n", res.ExitCode, res.Insts)
		return int(res.ExitCode) & 0x7f
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = *maxCycles
	if *trace {
		cfg.Trace = os.Stderr
	}
	if *rob > 0 {
		cfg.ROBSize = *rob
		if cfg.NumPhysRegs < 32+*rob {
			cfg.NumPhysRegs = 32 + *rob + 64
		}
	}
	wname := filepath.Base(flag.Arg(0))
	var journal *harness.Journal
	if *journalPath != "" {
		journal, err = harness.OpenJournal(*journalPath)
		if err != nil {
			return fail(err)
		}
		defer journal.Close()
		if rec, ok := journal.Lookup("levsim", wname, *policy); ok {
			fmt.Fprintf(os.Stderr, "levsim: journal hit for (%s, %s): exit=%d cycles=%d (not re-run)\n",
				wname, *policy, rec.ExitCode, rec.Stats.Cycles)
			return int(rec.ExitCode) & 0x7f
		}
	}
	c, err := cpu.New(prog, cfg, secure.MustNew(*policy))
	if err != nil {
		return fail(err)
	}
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	res, err := c.RunContext(ctx)
	if err != nil {
		var re *simerr.RunError
		if errors.As(err, &re) {
			fmt.Fprintf(os.Stderr, "levsim: run failed: kind=%s transient=%v\n",
				re.Kind, re.Transient())
		}
		return fail(err)
	}
	fmt.Print(res.Output)
	fmt.Fprintf(os.Stderr, "levsim: policy=%s exit=%d cycles=%d insts=%d ipc=%.3f\n",
		*policy, res.ExitCode, res.Stats.Cycles, res.Stats.Committed, res.Stats.IPC())
	if *showStats {
		fmt.Fprintln(os.Stderr, res.Stats)
	}
	if journal != nil {
		rec := harness.Run{Workload: wname, Policy: *policy, Stats: res.Stats, ExitCode: res.ExitCode}
		if err := journal.Record("levsim", rec); err != nil {
			fmt.Fprintln(os.Stderr, "levsim: journal write failed:", err)
		}
	}
	return int(res.ExitCode) & 0x7f
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "levsim:", err)
	return 1
}
