// levsim runs a LEV64 binary on the out-of-order core under a chosen
// secure-speculation policy and reports performance statistics.
//
// Usage:
//
//	levsim [-policy levioso] [-rob 192] [-stats] [-ref] prog.bin
//	levsim -deadline 30s -journal runs.jsonl prog.bin
//
// With -ref the program runs on the functional reference model instead
// (useful for checking architectural behaviour). -deadline bounds the run's
// wall-clock time (a hung simulation exits with a typed deadline error
// instead of spinning forever); -journal records the completed run in a
// JSON-lines journal and skips the simulation entirely if the same
// (program, policy) pair is already recorded there.
//
// The main is a thin flag-to-Request adapter over internal/engine; all
// pipeline logic lives there.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"levioso/internal/cli"
	"levioso/internal/engine"
	"levioso/internal/harness"
)

func main() {
	os.Exit(run())
}

// run is the real main; funneling every exit through its return value lets
// the deferred profile flush (-cpuprofile/-memprofile) always happen.
func run() int {
	sf := cli.RegisterSim(flag.CommandLine)
	journalPath := flag.String("journal", "", "record the run in this JSON-lines journal; skip if already recorded")
	metrics := cli.RegisterMetrics(flag.CommandLine)
	flag.Parse()
	defer func() { cli.DumpMetrics("levsim", *metrics) }()
	if flag.NArg() != 1 {
		return cli.Usage("levsim [-policy P] [-rob N] [-stats] [-ref] prog.bin")
	}
	if err := sf.Profiles.Start(); err != nil {
		return cli.Fail("levsim", err)
	}
	defer sf.Profiles.Stop()
	img, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return cli.Fail("levsim", err)
	}
	wname := filepath.Base(flag.Arg(0))
	var journal *harness.Journal
	if *journalPath != "" {
		journal, err = harness.OpenJournal(*journalPath)
		if err != nil {
			return cli.Fail("levsim", err)
		}
		defer journal.Close()
		if rec, ok := journal.Lookup("levsim", wname, *sf.Policy); ok {
			fmt.Fprintf(os.Stderr, "levsim: journal hit for (%s, %s): exit=%d cycles=%d (not re-run)\n",
				wname, *sf.Policy, rec.ExitCode, rec.Stats.Cycles)
			return cli.ExitStatus(rec.ExitCode)
		}
	}
	req, err := sf.Request(wname)
	if err != nil {
		return cli.Fail("levsim", err)
	}
	req.Binary = img
	res, err := engine.Run(context.Background(), req)
	if err != nil {
		return cli.Fail("levsim", err)
	}
	fmt.Print(res.Output)
	if res.Ref {
		fmt.Fprintf(os.Stderr, "levsim(ref): exit=%d insts=%d\n", res.ExitCode, res.RefInsts)
		return res.ExitStatus()
	}
	fmt.Fprintf(os.Stderr, "levsim: policy=%s exit=%d cycles=%d insts=%d ipc=%.3f\n",
		*sf.Policy, res.ExitCode, res.Stats.Cycles, res.Stats.Committed, res.Stats.IPC())
	if *sf.Stats {
		fmt.Fprintln(os.Stderr, res.Stats)
	}
	if journal != nil {
		rec := harness.Run{Workload: wname, Policy: *sf.Policy, Stats: res.Stats, ExitCode: res.ExitCode}
		if err := journal.Record("levsim", rec); err != nil {
			fmt.Fprintln(os.Stderr, "levsim: journal write failed:", err)
		}
	}
	return res.ExitStatus()
}
