// levsim runs a LEV64 binary on the out-of-order core under a chosen
// secure-speculation policy and reports performance statistics.
//
// Usage:
//
//	levsim [-policy levioso] [-rob 192] [-stats] [-ref] prog.bin
//
// With -ref the program runs on the functional reference model instead
// (useful for checking architectural behaviour).
package main

import (
	"flag"
	"fmt"
	"os"

	"levioso/internal/cpu"
	"levioso/internal/isa"
	"levioso/internal/ref"
	"levioso/internal/secure"
)

func main() {
	policy := flag.String("policy", "unsafe", fmt.Sprintf("secure-speculation policy %v", secure.Names()))
	rob := flag.Int("rob", 0, "override ROB size")
	maxCycles := flag.Uint64("max-cycles", 1_000_000_000, "cycle limit")
	showStats := flag.Bool("stats", false, "print detailed statistics")
	useRef := flag.Bool("ref", false, "run on the functional reference model instead")
	trace := flag.Bool("trace", false, "write a per-commit pipeline trace to stderr (slow)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: levsim [-policy P] [-rob N] [-stats] [-ref] prog.bin")
		os.Exit(2)
	}
	img, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog := new(isa.Program)
	if err := prog.UnmarshalBinary(img); err != nil {
		fatal(err)
	}
	if *useRef {
		res, err := ref.Run(prog, ref.Limits{})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Output)
		fmt.Fprintf(os.Stderr, "levsim(ref): exit=%d insts=%d\n", res.ExitCode, res.Insts)
		os.Exit(int(res.ExitCode) & 0x7f)
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = *maxCycles
	if *trace {
		cfg.Trace = os.Stderr
	}
	if *rob > 0 {
		cfg.ROBSize = *rob
		if cfg.NumPhysRegs < 32+*rob {
			cfg.NumPhysRegs = 32 + *rob + 64
		}
	}
	c, err := cpu.New(prog, cfg, secure.MustNew(*policy))
	if err != nil {
		fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Output)
	fmt.Fprintf(os.Stderr, "levsim: policy=%s exit=%d cycles=%d insts=%d ipc=%.3f\n",
		*policy, res.ExitCode, res.Stats.Cycles, res.Stats.Committed, res.Stats.IPC())
	if *showStats {
		fmt.Fprintln(os.Stderr, res.Stats)
	}
	os.Exit(int(res.ExitCode) & 0x7f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "levsim:", err)
	os.Exit(1)
}
