// levc compiles LevC source to a LEV64 binary image (or assembly listing),
// running the Levioso annotation pass. The main is a thin adapter over the
// engine's Compile step.
//
// Usage:
//
//	levc [-S] [-o out] [-no-annotate] file.lc
//
// With -S the generated assembly is written instead of a binary image.
package main

import (
	"flag"
	"fmt"
	"os"

	"levioso/internal/cli"
	"levioso/internal/engine"
)

func main() {
	os.Exit(run())
}

func run() int {
	emitAsm := flag.Bool("S", false, "emit assembly instead of a binary image")
	bf := cli.RegisterBuild(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		return cli.Usage("levc [-S] [-o out] [-no-annotate] [-l] file.lc")
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		return cli.Fail("levc", err)
	}
	if *emitAsm {
		text, err := engine.EmitAsm(in, string(src))
		if err != nil {
			return cli.Fail("levc", err)
		}
		if err := cli.WriteOut("levc", *bf.Out, cli.DefaultOut(in, ".lc", ".s"), []byte(text)); err != nil {
			return cli.Fail("levc", err)
		}
		return 0
	}
	prog, st, err := engine.Compile(in, string(src), !*bf.NoAnnotate)
	if err != nil {
		return cli.Fail("levc", err)
	}
	if st != nil {
		fmt.Fprintf(os.Stderr, "levc: %d branches, %d annotated, %d conservative, table %d bytes\n",
			st.Branches, st.Annotated, st.Conservative, st.TableBytes)
	}
	if *bf.Listing {
		fmt.Print(engine.Listing(prog))
	}
	img, err := prog.MarshalBinary()
	if err != nil {
		return cli.Fail("levc", err)
	}
	if err := cli.WriteOut("levc", *bf.Out, cli.DefaultOut(in, ".lc", ".bin"), img); err != nil {
		return cli.Fail("levc", err)
	}
	return 0
}
