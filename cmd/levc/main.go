// levc compiles LevC source to a LEV64 binary image (or assembly listing),
// running the Levioso annotation pass.
//
// Usage:
//
//	levc [-S] [-o out] [-no-annotate] file.lc
//
// With -S the generated assembly is written instead of a binary image.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"levioso/internal/asm"
	"levioso/internal/core"
	"levioso/internal/lang"
)

func main() {
	emitAsm := flag.Bool("S", false, "emit assembly instead of a binary image")
	out := flag.String("o", "", "output path (default: input with .bin/.s suffix)")
	noAnnotate := flag.Bool("no-annotate", false, "skip the Levioso annotation pass")
	listing := flag.Bool("l", false, "print a disassembly listing to stdout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: levc [-S] [-o out] [-no-annotate] [-l] file.lc")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	if *emitAsm {
		text, err := lang.CompileToAsm(in, string(src))
		if err != nil {
			fatal(err)
		}
		writeOut(*out, defaultName(in, ".s"), []byte(text))
		return
	}
	text, err := lang.CompileToAsm(in, string(src))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(in, text)
	if err != nil {
		fatal(fmt.Errorf("internal: generated assembly rejected: %w", err))
	}
	if !*noAnnotate {
		st, err := core.Annotate(prog)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "levc: %d branches, %d annotated, %d conservative, table %d bytes\n",
			st.Branches, st.Annotated, st.Conservative, st.TableBytes)
	}
	if *listing {
		fmt.Print(asm.Listing(prog))
	}
	img, err := prog.MarshalBinary()
	if err != nil {
		fatal(err)
	}
	writeOut(*out, defaultName(in, ".bin"), img)
}

func defaultName(in, suffix string) string {
	base := strings.TrimSuffix(in, ".lc")
	return base + suffix
}

func writeOut(out, def string, data []byte) {
	if out == "" {
		out = def
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "levc: wrote %s (%d bytes)\n", out, len(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "levc:", err)
	os.Exit(1)
}
