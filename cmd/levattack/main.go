// levattack replays the attack expectation matrix: four transient-execution
// attacks — Spectre-V1 (declared secret), its data-dependence variant,
// Spectre-CT (non-speculatively loaded secret), and Spectre-V1 with the
// secret deliberately undeclared — run against every registered policy
// configuration (parameterized families at every level). Each row's observed
// leaks are judged against the policy's coverage contract
// (attack.ExpectedLeaks): a defense that leaks where it promised coverage
// fails, and so does one that blocks data it never promised to protect.
//
// Usage:
//
//	levattack                            # full registry sweep
//	levattack -policy levioso            # one policy (spec strings accepted)
//	levattack -policy tunable:level=ctrl
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"

	"levioso/internal/attack"
	"levioso/internal/cli"
	"levioso/internal/engine"
	"levioso/internal/simerr"
)

// runMatrix recovers a panic anywhere in the attack harness into a typed
// simerr.ErrPanic, so a broken policy reports a classified failure instead
// of a bare stack trace.
func runMatrix(policies []string) (outs []attack.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &simerr.RunError{
				Kind:   simerr.KindPanic,
				Detail: fmt.Sprint(r),
				Stack:  string(debug.Stack()),
			}
		}
	}()
	return attack.Run(policies, nil)
}

func main() {
	os.Exit(run())
}

func run() int {
	policy := flag.String("policy", "", "run a single policy spec (default: the full registry sweep)")
	flag.Parse()

	policies := engine.SweepPolicies()
	if *policy != "" {
		policies = strings.Split(*policy, ",")
	}
	outcomes, err := runMatrix(policies)
	if err != nil {
		return cli.Fail("levattack", err)
	}
	fmt.Printf("%-28s %-8s %-8s %-8s %-10s %s\n",
		"policy", "v1", "ct-data", "ct", "v1-public", "verdict")
	violations := 0
	for _, o := range outcomes {
		exp, err := attack.ExpectedLeaks(o.Policy)
		if err != nil {
			return cli.Fail("levattack", err)
		}
		verdict := "as contracted"
		if got := o.Leaks(); got != exp {
			verdict = fmt.Sprintf("CONTRACT VIOLATED: got %+v, want %+v", got, exp)
			violations++
		}
		fmt.Printf("%-28s %-8s %-8s %-8s %-10s %s\n", o.Policy,
			fmt.Sprintf("%d/%d", o.V1Correct, o.V1Trials),
			fmt.Sprintf("%d/%d", o.CTDCorrect, o.CTDTrials),
			fmt.Sprintf("%d/%d", o.CTCorrect, o.CTTrials),
			fmt.Sprintf("%d/%d", o.PubCorrect, o.PubTrials),
			verdict)
	}
	if violations > 0 {
		fmt.Printf("levattack: %d contract violation(s)\n", violations)
		return 1
	}
	return 0
}
