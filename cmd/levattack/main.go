// levattack runs the security evaluation: Spectre-V1 (speculatively-accessed
// secret) and Spectre-CT (non-speculatively loaded secret) against each
// policy, and reports which policies leak.
//
// Usage:
//
//	levattack                       # all policies
//	levattack -policy levioso       # one policy
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"levioso/internal/attack"
	"levioso/internal/secure"
)

func main() {
	policy := flag.String("policy", "", "run a single policy (default: all)")
	flag.Parse()

	policies := append(append([]string{}, secure.EvalNames()...), "taint")
	if *policy != "" {
		policies = strings.Split(*policy, ",")
	}
	outcomes, err := attack.Run(policies, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "levattack:", err)
		os.Exit(1)
	}
	fmt.Printf("%-12s %-22s %-26s %s\n", "policy", "spectre-v1 (sandbox)", "spectre-ct (non-spec)", "verdict")
	leaked := false
	for _, o := range outcomes {
		verdict := "SECURE"
		switch {
		case o.V1Leaks() && o.CTLeaks():
			verdict = "LEAKS BOTH"
		case o.V1Leaks():
			verdict = "LEAKS V1"
		case o.CTLeaks():
			verdict = "LEAKS CT (not comprehensive)"
		}
		if o.Policy != "unsafe" && (o.V1Leaks() || o.CTLeaks()) && o.Policy != "taint" {
			leaked = true
		}
		fmt.Printf("%-12s %-22s %-26s %s\n", o.Policy,
			fmt.Sprintf("%d/%d recovered", o.V1Correct, o.V1Trials),
			fmt.Sprintf("%d/%d recovered", o.CTCorrect, o.CTTrials),
			verdict)
	}
	if leaked {
		os.Exit(1)
	}
}
