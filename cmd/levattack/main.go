// levattack runs the security evaluation: Spectre-V1 (speculatively-accessed
// secret) and Spectre-CT (non-speculatively loaded secret) against each
// policy, and reports which policies leak.
//
// Usage:
//
//	levattack                       # all policies
//	levattack -policy levioso       # one policy
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"

	"levioso/internal/attack"
	"levioso/internal/cli"
	"levioso/internal/engine"
	"levioso/internal/simerr"
)

// runMatrix recovers a panic anywhere in the attack harness into a typed
// simerr.ErrPanic, so a broken policy reports a classified failure instead
// of a bare stack trace.
func runMatrix(policies []string) (outs []attack.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &simerr.RunError{
				Kind:   simerr.KindPanic,
				Detail: fmt.Sprint(r),
				Stack:  string(debug.Stack()),
			}
		}
	}()
	return attack.Run(policies, nil)
}

func main() {
	os.Exit(run())
}

func run() int {
	policy := flag.String("policy", "", "run a single policy (default: all)")
	flag.Parse()

	policies := append(append([]string{}, engine.EvalPolicies()...), "taint")
	if *policy != "" {
		policies = strings.Split(*policy, ",")
	}
	outcomes, err := runMatrix(policies)
	if err != nil {
		return cli.Fail("levattack", err)
	}
	fmt.Printf("%-12s %-22s %-26s %s\n", "policy", "spectre-v1 (sandbox)", "spectre-ct (non-spec)", "verdict")
	leaked := false
	for _, o := range outcomes {
		verdict := "SECURE"
		switch {
		case o.V1Leaks() && o.CTLeaks():
			verdict = "LEAKS BOTH"
		case o.V1Leaks():
			verdict = "LEAKS V1"
		case o.CTLeaks():
			verdict = "LEAKS CT (not comprehensive)"
		}
		if o.Policy != "unsafe" && (o.V1Leaks() || o.CTLeaks()) && o.Policy != "taint" {
			leaked = true
		}
		fmt.Printf("%-12s %-22s %-26s %s\n", o.Policy,
			fmt.Sprintf("%d/%d recovered", o.V1Correct, o.V1Trials),
			fmt.Sprintf("%d/%d recovered", o.CTCorrect, o.CTTrials),
			verdict)
	}
	if leaked {
		return 1
	}
	return 0
}
