// benchguard is the CI bench-smoke gate: it compares a fresh BenchmarkHotLoop
// measurement against the committed BENCH_cpu.json trajectory and fails when
// suite-mean simulated cycles per second regressed by more than the allowed
// fraction.
//
// Usage:
//
//	benchguard -baseline BENCH_cpu.json -candidate .bench_smoke.json [-max-regress 0.20]
//
// Both files may be in the trajectory format ({"entries": [...]}) or the
// legacy flat-report format; the newest entry of each is compared. To damp
// wall-clock noise on shared CI machines, the compared figure is not the
// stored suite mean (which averages every probe iteration, cold ones
// included) but the mean over cells of each cell's best observed rate —
// a statistic that only improves with repetition and is stable under
// transient descheduling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"levioso/internal/cli"
)

type measurement struct {
	Workload     string  `json:"workload"`
	Policy       string  `json:"policy"`
	Size         string  `json:"size"`
	CyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

type report struct {
	Timestamp    string        `json:"timestamp"`
	Measurements []measurement `json:"measurements"`
}

type trajectory struct {
	Entries []report `json:"entries"`
}

// load returns the newest report in the file, accepting both formats.
func load(path string) (report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var traj trajectory
	if err := json.Unmarshal(raw, &traj); err == nil && len(traj.Entries) > 0 {
		return traj.Entries[len(traj.Entries)-1], nil
	}
	var flat report
	if err := json.Unmarshal(raw, &flat); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(flat.Measurements) == 0 {
		return report{}, fmt.Errorf("%s: no measurements", path)
	}
	return flat, nil
}

// robustMean reduces a report to the mean over (workload, policy, size)
// cells of each cell's best observed rate.
func robustMean(r report) float64 {
	best := map[[3]string]float64{}
	for _, m := range r.Measurements {
		k := [3]string{m.Workload, m.Policy, m.Size}
		if m.CyclesPerSec > best[k] {
			best[k] = m.CyclesPerSec
		}
	}
	if len(best) == 0 {
		return 0
	}
	var sum float64
	for _, v := range best {
		sum += v
	}
	return sum / float64(len(best))
}

func main() {
	os.Exit(run())
}

func run() int {
	baseline := flag.String("baseline", "BENCH_cpu.json", "committed trajectory to compare against")
	candidate := flag.String("candidate", "", "fresh measurement file")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum allowed fractional regression")
	flag.Parse()
	if *candidate == "" {
		return cli.Usage("benchguard -baseline BENCH_cpu.json -candidate FILE [-max-regress 0.20]")
	}
	base, err := load(*baseline)
	if err != nil {
		return cli.Fail("benchguard", err)
	}
	cand, err := load(*candidate)
	if err != nil {
		return cli.Fail("benchguard", err)
	}
	bm, cm := robustMean(base), robustMean(cand)
	if bm <= 0 {
		return cli.Fail("benchguard", fmt.Errorf("baseline %s has no usable rate", *baseline))
	}
	change := cm/bm - 1
	fmt.Printf("benchguard: baseline %.0f cycles/s (%s), candidate %.0f cycles/s (%+.1f%%)\n",
		bm, base.Timestamp, cm, 100*change)
	if cm < bm*(1-*maxRegress) {
		return cli.Fail("benchguard", fmt.Errorf(
			"suite-mean sim cycles/s regressed %.1f%% (limit %.0f%%)", -100*change, 100**maxRegress))
	}
	return 0
}
