// levas assembles LEV64 assembly into a binary image, optionally running the
// Levioso annotation pass (on by default: hand-written assembly benefits from
// the same reconvergence analysis as compiled code).
//
// Usage:
//
//	levas [-o out.bin] [-no-annotate] [-l] file.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"levioso/internal/asm"
	"levioso/internal/core"
)

func main() {
	out := flag.String("o", "", "output path (default: input with .bin suffix)")
	noAnnotate := flag.Bool("no-annotate", false, "skip the Levioso annotation pass")
	listing := flag.Bool("l", false, "print a disassembly listing to stdout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: levas [-o out.bin] [-no-annotate] [-l] file.s")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(in, string(src))
	if err != nil {
		fatal(err)
	}
	if !*noAnnotate {
		st, err := core.Annotate(prog)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "levas: %d branches, %d annotated, %d conservative\n",
			st.Branches, st.Annotated, st.Conservative)
	}
	if *listing {
		fmt.Print(asm.Listing(prog))
	}
	img, err := prog.MarshalBinary()
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".s") + ".bin"
	}
	if err := os.WriteFile(dst, img, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "levas: wrote %s (%d bytes)\n", dst, len(img))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "levas:", err)
	os.Exit(1)
}
