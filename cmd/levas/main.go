// levas assembles LEV64 assembly into a binary image, optionally running the
// Levioso annotation pass (on by default: hand-written assembly benefits from
// the same reconvergence analysis as compiled code). The main is a thin
// adapter over the engine's Assemble step.
//
// Usage:
//
//	levas [-o out.bin] [-no-annotate] [-l] file.s
package main

import (
	"flag"
	"fmt"
	"os"

	"levioso/internal/cli"
	"levioso/internal/engine"
)

func main() {
	os.Exit(run())
}

func run() int {
	bf := cli.RegisterBuild(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		return cli.Usage("levas [-o out.bin] [-no-annotate] [-l] file.s")
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		return cli.Fail("levas", err)
	}
	prog, st, err := engine.Assemble(in, string(src), !*bf.NoAnnotate)
	if err != nil {
		return cli.Fail("levas", err)
	}
	if st != nil {
		fmt.Fprintf(os.Stderr, "levas: %d branches, %d annotated, %d conservative\n",
			st.Branches, st.Annotated, st.Conservative)
	}
	if *bf.Listing {
		fmt.Print(engine.Listing(prog))
	}
	img, err := prog.MarshalBinary()
	if err != nil {
		return cli.Fail("levas", err)
	}
	if err := cli.WriteOut("levas", *bf.Out, cli.DefaultOut(in, ".s", ".bin"), img); err != nil {
		return cli.Fail("levas", err)
	}
	return 0
}
