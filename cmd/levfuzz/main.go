// levfuzz is the differential fuzzer: it generates seeded random LEV64
// programs (weighted profiles from branch storms to Spectre-shaped gadgets),
// runs every one through the engine under every registered policy, and
// judges each run with the oracle stack — architectural differential against
// the reference model, bit-exact determinism, core invariants under
// fault-injected squash storms, the gadget security oracle, and panic/limit
// capture. Failures are auto-shrunk to minimal repros and persisted in a
// crash-safe corpus.
//
// Usage:
//
//	levfuzz -duration 10s -seed 1             # fixed-seed timed session
//	levfuzz -count 500 -profile gadget        # 500 gadget cases
//	levfuzz -corpus corpus/                   # persist repros + resume journal
//	levfuzz -campaign camp/ -count 2000       # coverage-guided campaign
//	levfuzz -policies unsafe,fence,levioso    # restrict the policy matrix
//	levfuzz -inject 'commit-stall:start=1000' # mutation-check a fault plan
//
// With -corpus, completed cases are journaled (fsync per entry): re-running
// the identical invocation resumes where it stopped without re-executing
// finished cases.
//
// With -campaign, levfuzz runs the coverage-guided tier instead: a
// sequential corpus-evolving loop whose whole state (corpus, coverage map,
// finding buckets) is rewritten atomically after every case, so killing it
// at any point — including kill -9 — and rerunning the identical invocation
// resumes exactly where it stopped. -blind disables the coverage feedback
// (every case generated fresh), the control arm for coverage-growth
// comparisons. Exit status: 0 clean, 1 findings, 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"levioso/internal/cli"
	"levioso/internal/fuzz"
	"levioso/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 1, "session base seed")
	duration := flag.Duration("duration", 0, "wall-clock bound for the session (0: run -count cases)")
	count := flag.Int("count", 0, "number of cases (0 with -duration: unbounded)")
	profileSpec := flag.String("profile", "", "comma-separated generation profiles (default: all; one of "+profileList()+")")
	policySpec := flag.String("policies", "", "comma-separated policies to judge under (default: all registered)")
	corpus := flag.String("corpus", "", "corpus directory for shrunk repros and the resume journal")
	campaign := flag.String("campaign", "", "coverage-guided campaign directory (state file + repros); overrides -corpus")
	blind := flag.Bool("blind", false, "with -campaign: disable coverage-guided mutation (every case fresh)")
	workers := flag.Int("workers", 0, "parallel workers (default: GOMAXPROCS, capped at 8)")
	maxCycles := flag.Uint64("max-cycles", 0, "cycle limit per core run (default 4M)")
	deadline := flag.Duration("deadline", 0, "wall-clock bound per run (default 30s)")
	inject := flag.String("inject", "", "fault plan, e.g. 'commit-stall:start=1000;delay-fill:extra=10'")
	noShrink := flag.Bool("no-shrink", false, "persist findings without minimizing")
	noMatrix := flag.Bool("no-matrix", false, "skip the once-per-session attack expectation matrix check")
	quiet := flag.Bool("q", false, "suppress per-finding progress lines")
	snapshot := flag.Duration("snapshot", 5*time.Second, "periodic throughput snapshot interval (0 disables)")
	metrics := cli.RegisterMetrics(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		return cli.Usage("levfuzz [-seed N] [-duration D | -count N] [-profile p,..] [-policies p,..] [-corpus dir] [-inject spec]")
	}

	profiles, err := fuzz.ParseProfiles(*profileSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "levfuzz: %v\n", err)
		return 2
	}
	plan, err := fuzz.ParseFaultSpec(*inject, int64(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "levfuzz: %v\n", err)
		return 2
	}

	cfg := fuzz.Options{
		Seed:      *seed,
		Profiles:  profiles,
		Count:     *count,
		Duration:  *duration,
		Workers:   *workers,
		CorpusDir: *corpus,
		NoShrink:  *noShrink,
		NoMatrix:  *noMatrix,
		Policies:  cli.SplitList(*policySpec),
		MaxCycles: *maxCycles,
		Deadline:  *deadline,
		Faults:    plan,
		Blind:     *blind,
	}
	if !*quiet {
		cfg.Log = os.Stderr
		cfg.SnapshotEvery = *snapshot
	}
	defer func() { cli.DumpMetrics("levfuzz", *metrics) }()

	// ^C finishes in-flight cases and reports what was found; with a corpus
	// journal or a campaign directory the next identical invocation resumes
	// from the interruption.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *campaign != "" {
		sum, err := fuzz.Campaign(ctx, *campaign, cfg)
		if err != nil {
			return cli.Fail("levfuzz", err)
		}
		fmt.Print(renderCampaign(sum))
		if sum.FindingCount > 0 {
			fmt.Fprintf(os.Stderr, "levfuzz: %d finding(s)\n", sum.FindingCount)
			return 1
		}
		return 0
	}

	sum, err := fuzz.Run(ctx, cfg)
	if err != nil {
		return cli.Fail("levfuzz", err)
	}
	fmt.Print(render(sum))
	if len(sum.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "levfuzz: %d finding(s)\n", len(sum.Findings))
		return 1
	}
	return 0
}

// renderCampaign formats a campaign summary: headline counters plus one line
// per finding class with its repro files.
func renderCampaign(s *fuzz.CampaignSummary) string {
	t := stats.NewTable("fuzz campaign", "metric", "value")
	t.Add("cases executed", fmt.Sprint(s.Cases))
	t.Add("cases resumed", fmt.Sprint(s.Resumed))
	t.Add("cases skipped", fmt.Sprint(s.Skipped))
	t.Add("cases mutated", fmt.Sprint(s.Mutated))
	t.Add("executions", fmt.Sprint(s.Execs))
	t.Add("coverage bits", fmt.Sprint(s.CoverageBits))
	t.Add("corpus size", fmt.Sprint(s.CorpusSize))
	t.Add("findings", fmt.Sprint(s.FindingCount))
	t.Add("elapsed", s.Elapsed.Round(time.Millisecond).String())
	out := t.String()
	for _, b := range s.Buckets {
		out += fmt.Sprintf("class %s/%s/%s: %d (first at case %06d)", b.Oracle, b.Policy, b.Kind, b.Count, b.FirstIndex)
		if len(b.Repros) > 0 {
			out += fmt.Sprintf(" [repros %v]", b.Repros)
		}
		out += "\n"
	}
	return out
}

// render formats the session summary: the headline counters, the per-oracle
// breakdown when anything fired, and one line per finding with its repro.
func render(s *fuzz.Summary) string {
	t := stats.NewTable("fuzz session", "metric", "value")
	t.Add("cases judged", fmt.Sprint(s.Cases))
	t.Add("cases resumed", fmt.Sprint(s.Resumed))
	t.Add("cases skipped", fmt.Sprint(s.Skipped))
	t.Add("executions", fmt.Sprint(s.Execs))
	t.Add("execs/sec", fmt.Sprintf("%.0f", s.ExecsPerSec()))
	t.Add("elapsed", s.Elapsed.Round(time.Millisecond).String())
	t.Add("findings", fmt.Sprint(len(s.Findings)))
	t.Add("gadget leaks (unsafe baseline)", fmt.Sprint(s.GadgetLeaksUnsafe))
	if s.ShrinkEvals > 0 {
		t.Add("shrink evals", fmt.Sprint(s.ShrinkEvals))
		t.Add("shrink ratio", fmt.Sprintf("%.0f%% (%d -> %d insts)", 100*s.ShrinkRatio(), s.ShrunkFrom, s.ShrunkTo))
	}
	out := t.String()

	if len(s.ByOracle) > 0 {
		bt := stats.NewTable("findings by oracle", "oracle", "count")
		for _, o := range []string{"differential", "determinism", "invariants", "security", "limits", "panic", "build", "generator"} {
			if n := s.ByOracle[o]; n > 0 {
				bt.Add(o, fmt.Sprint(n))
			}
		}
		out += "\n" + bt.String()
	}
	for _, r := range s.Findings {
		out += fmt.Sprintf("finding %s: %s", r.Name, r.Finding)
		if r.Repro != "" {
			out += " [repro " + r.Repro + "]"
		}
		out += "\n"
	}
	return out
}

func profileList() string {
	s := ""
	for i, p := range fuzz.Profiles() {
		if i > 0 {
			s += ","
		}
		s += string(p)
	}
	return s
}
