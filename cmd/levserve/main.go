// levserve is the simulation daemon: an HTTP/JSON service over the shared
// run pipeline (internal/engine) with a bounded worker pool, per-request
// deadlines, and an LRU result cache keyed by (program hash, policy, config
// digest) — repeated sweep cells are served without re-simulating.
//
// Usage:
//
//	levserve [-addr :8347] [-workers N] [-cache 256] [-deadline 60s]
//	levserve -worker
//
// Endpoints (see internal/serve):
//
//	POST /v1/simulate   {"source"|"asm"|"binary"|"workload", "policy", ...}
//	POST /v1/batch      {"cells":[...]} — NDJSON stream, one line per cell
//	GET  /v1/policies   GET /v1/workloads   GET /v1/stats   GET /v1/version
//	GET  /metrics       GET /healthz
//
// Batch cells run on the fault-tolerant dispatch tier (internal/dispatch):
// retries with backoff, per-worker circuit breakers, admission control, and
// a shared result cache. By default the workers are in-process;
// -worker-procs isolates them as subprocesses (this same binary re-executed
// as `levserve -worker`, speaking a versioned NDJSON protocol over
// stdin/stdout), so a crashing simulation takes down a disposable worker
// instead of the daemon. -worker runs that worker loop directly and is not
// meant for interactive use.
//
// -access-log writes one structured JSON line per request to stderr;
// -pprof mounts net/http/pprof under /debug/pprof/. GET /metrics serves the
// server's metric registry in the Prometheus text format.
//
// SIGINT/SIGTERM drain in-flight requests and shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"levioso/internal/cli"
	"levioso/internal/dispatch"
	"levioso/internal/serve"
)

func main() {
	os.Exit(run())
}

// run is the real main; funneling every exit through its return value keeps
// shutdown and error paths uniform across the tools.
func run() int {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	cacheN := flag.Int("cache", 256, "result-cache entries (negative disables)")
	deadline := flag.Duration("deadline", time.Minute, "default per-request deadline")
	maxBody := flag.Int64("max-body", 8<<20, "max request body bytes")
	accessLog := flag.Bool("access-log", false, "write one JSON access-log line per request to stderr")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	workerMode := flag.Bool("worker", false, "run as a dispatch worker on stdin/stdout (spawned by the coordinator, not for interactive use)")
	workerProcs := flag.Bool("worker-procs", false, "run batch cells in subprocess workers (this binary re-executed with -worker)")
	batchWorkers := flag.Int("batch-workers", 0, "batch dispatch worker slots (0 = same as -workers)")
	flag.Parse()
	if flag.NArg() != 0 {
		return cli.Usage("levserve [-addr :8347] [-workers N] [-cache 256] [-deadline 60s] [-access-log] [-pprof] [-worker-procs] [-batch-workers N] | levserve -worker")
	}

	if *workerMode {
		// Worker side of the dispatch wire protocol. EOF on stdin (the
		// coordinator closing the pipe) is the shutdown signal; signals are
		// left at their defaults so the coordinator's Kill works.
		if err := dispatch.ServeWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			return cli.Fail("levserve -worker", err)
		}
		return 0
	}

	cfg := serve.Config{
		Workers:         *workers,
		CacheEntries:    *cacheN,
		DefaultDeadline: *deadline,
		MaxBody:         *maxBody,
		EnablePprof:     *enablePprof,
		Dispatch:        &dispatch.Config{Workers: *batchWorkers},
	}
	if *workerProcs {
		exe, err := os.Executable()
		if err != nil {
			return cli.Fail("levserve", fmt.Errorf("resolving own executable for -worker-procs: %w", err))
		}
		cfg.Dispatch.Spawn = dispatch.Proc(exe, "-worker")
	}
	if *accessLog {
		cfg.AccessLog = os.Stderr
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return cli.Fail("levserve", err)
	}
	defer srv.Close()
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "levserve: shutdown:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "levserve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return cli.Fail("levserve", err)
	}
	<-shutdownDone
	fmt.Fprintln(os.Stderr, "levserve: shut down cleanly")
	return 0
}
