// levserve is the simulation daemon: an HTTP/JSON service over the shared
// run pipeline (internal/engine) with a bounded worker pool, per-request
// deadlines, and an LRU result cache keyed by (program hash, policy, config
// digest) — repeated sweep cells are served without re-simulating.
//
// Usage:
//
//	levserve [-addr :8347] [-workers N] [-cache 256] [-deadline 60s]
//	levserve -worker
//
// Endpoints (see internal/serve):
//
//	POST /v1/simulate   {"source"|"asm"|"binary"|"workload", "policy", ...}
//	POST /v1/batch      {"cells":[...]} — NDJSON stream, one line per cell
//	GET  /v1/policies   GET /v1/workloads   GET /v1/stats   GET /v1/version
//	GET  /metrics       GET /healthz
//
// Batch cells run on the fault-tolerant dispatch tier (internal/dispatch):
// retries with backoff, per-worker circuit breakers, admission control, and
// a shared result cache. By default the workers are in-process;
// -worker-procs isolates them as subprocesses (this same binary re-executed
// as `levserve -worker`, speaking a versioned NDJSON protocol over
// stdin/stdout), so a crashing simulation takes down a disposable worker
// instead of the daemon. -worker runs that worker loop directly and is not
// meant for interactive use.
//
// Multi-host: `levserve -worker-listen :7070` runs a worker daemon serving
// the same wire protocol over TCP (heartbeats, daemon-wide shared result
// cache, graceful drain on SIGTERM); a coordinator started with
// `-remote host1:7070,host2:7070` dispatches its batch tier to those
// daemons with automatic reconnection, per-peer backoff, and heartbeat
// partition detection. -net-inject arms a seeded network fault plan on the
// coordinator's connections (see internal/faultinject.ParseNetSpec) for
// chaos drills.
//
// -access-log writes one structured JSON line per request to stderr;
// -pprof mounts net/http/pprof under /debug/pprof/. GET /metrics serves the
// server's metric registry in the Prometheus text format.
//
// SIGINT/SIGTERM drain in-flight requests and shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"levioso/internal/cli"
	"levioso/internal/dispatch"
	"levioso/internal/faultinject"
	"levioso/internal/serve"
)

func main() {
	os.Exit(run())
}

// run is the real main; funneling every exit through its return value keeps
// shutdown and error paths uniform across the tools.
func run() int {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	cacheN := flag.Int("cache", 256, "result-cache entries (negative disables)")
	deadline := flag.Duration("deadline", time.Minute, "default per-request deadline")
	maxBody := flag.Int64("max-body", 8<<20, "max request body bytes")
	accessLog := flag.Bool("access-log", false, "write one JSON access-log line per request to stderr")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	workerMode := flag.Bool("worker", false, "run as a dispatch worker on stdin/stdout (spawned by the coordinator, not for interactive use)")
	workerProcs := flag.Bool("worker-procs", false, "run batch cells in subprocess workers (this binary re-executed with -worker)")
	batchWorkers := flag.Int("batch-workers", 0, "batch dispatch worker slots (0 = same as -workers)")
	workerListen := flag.String("worker-listen", "", "run as a TCP worker daemon on this address (e.g. :7070)")
	remote := flag.String("remote", "", "comma-separated worker-daemon addresses for the batch tier (host:port,...)")
	netInject := flag.String("net-inject", "", "seeded network fault plan for -remote connections (kind[:key=val...][;...]; kinds conn-kill, latency, partial-write, corrupt-frame, partition)")
	netInjectSeed := flag.Int64("net-inject-seed", 1, "seed for the -net-inject fault plan")
	flag.Parse()
	if flag.NArg() != 0 {
		return cli.Usage("levserve [-addr :8347] [-workers N] [-cache 256] [-deadline 60s] [-access-log] [-pprof] [-worker-procs] [-batch-workers N] [-remote host:port,...] | levserve -worker | levserve -worker-listen :7070")
	}

	if *workerMode {
		// Worker side of the dispatch wire protocol. EOF on stdin (the
		// coordinator closing the pipe) is the shutdown signal; signals are
		// left at their defaults so the coordinator's Kill works.
		if err := dispatch.ServeWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			return cli.Fail("levserve -worker", err)
		}
		return 0
	}

	if *workerListen != "" {
		// TCP worker daemon: many sequential calls per connection, shared
		// result cache across connections, heartbeats for coordinator-side
		// partition detection. SIGINT/SIGTERM drain gracefully.
		ln, err := net.Listen("tcp", *workerListen)
		if err != nil {
			return cli.Fail("levserve -worker-listen", err)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Fprintf(os.Stderr, "levserve: worker daemon listening on %s\n", ln.Addr())
		if err := dispatch.ListenWorkers(ctx, ln, dispatch.ListenOptions{CacheEntries: *cacheN}); err != nil {
			return cli.Fail("levserve -worker-listen", err)
		}
		fmt.Fprintln(os.Stderr, "levserve: worker daemon drained cleanly")
		return 0
	}

	cfg := serve.Config{
		Workers:         *workers,
		CacheEntries:    *cacheN,
		DefaultDeadline: *deadline,
		MaxBody:         *maxBody,
		EnablePprof:     *enablePprof,
		Dispatch:        &dispatch.Config{Workers: *batchWorkers},
	}
	if *workerProcs {
		exe, err := os.Executable()
		if err != nil {
			return cli.Fail("levserve", fmt.Errorf("resolving own executable for -worker-procs: %w", err))
		}
		cfg.Dispatch.Spawn = dispatch.Proc(exe, "-worker")
	}
	if *remote != "" {
		cfg.Remote = cli.SplitList(*remote)
	}
	if *netInject != "" {
		if len(cfg.Remote) == 0 {
			return cli.Usage("levserve: -net-inject requires -remote")
		}
		plan, err := faultinject.ParseNetSpec(*netInject, *netInjectSeed)
		if err != nil {
			return cli.Fail("levserve", err)
		}
		if plan != nil {
			cfg.RemoteConfig.WrapConn = faultinject.NewNet(*plan).Wrap
		}
	}
	if *accessLog {
		cfg.AccessLog = os.Stderr
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return cli.Fail("levserve", err)
	}
	defer srv.Close()
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "levserve: shutdown:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "levserve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return cli.Fail("levserve", err)
	}
	<-shutdownDone
	fmt.Fprintln(os.Stderr, "levserve: shut down cleanly")
	return 0
}
