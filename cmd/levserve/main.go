// levserve is the simulation daemon: an HTTP/JSON service over the shared
// run pipeline (internal/engine) with a bounded worker pool, per-request
// deadlines, and an LRU result cache keyed by (program hash, policy, config
// digest) — repeated sweep cells are served without re-simulating.
//
// Usage:
//
//	levserve [-addr :8347] [-workers N] [-cache 256] [-deadline 60s]
//
// Endpoints (see internal/serve):
//
//	POST /v1/simulate   {"source"|"asm"|"binary"|"workload", "policy", ...}
//	GET  /v1/policies   GET /v1/workloads   GET /v1/stats   GET /v1/version
//	GET  /metrics       GET /healthz
//
// -access-log writes one structured JSON line per request to stderr;
// -pprof mounts net/http/pprof under /debug/pprof/. GET /metrics serves the
// server's metric registry in the Prometheus text format.
//
// SIGINT/SIGTERM drain in-flight requests and shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"levioso/internal/cli"
	"levioso/internal/serve"
)

func main() {
	os.Exit(run())
}

// run is the real main; funneling every exit through its return value keeps
// shutdown and error paths uniform across the tools.
func run() int {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	cacheN := flag.Int("cache", 256, "result-cache entries (negative disables)")
	deadline := flag.Duration("deadline", time.Minute, "default per-request deadline")
	maxBody := flag.Int64("max-body", 8<<20, "max request body bytes")
	accessLog := flag.Bool("access-log", false, "write one JSON access-log line per request to stderr")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()
	if flag.NArg() != 0 {
		return cli.Usage("levserve [-addr :8347] [-workers N] [-cache 256] [-deadline 60s] [-access-log] [-pprof]")
	}

	cfg := serve.Config{
		Workers:         *workers,
		CacheEntries:    *cacheN,
		DefaultDeadline: *deadline,
		MaxBody:         *maxBody,
		EnablePprof:     *enablePprof,
	}
	if *accessLog {
		cfg.AccessLog = os.Stderr
	}
	srv := serve.New(cfg)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "levserve: shutdown:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "levserve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return cli.Fail("levserve", err)
	}
	<-shutdownDone
	fmt.Fprintln(os.Stderr, "levserve: shut down cleanly")
	return 0
}
