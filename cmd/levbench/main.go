// levbench regenerates the paper's tables and figures (see DESIGN.md's
// experiment index).
//
// Usage:
//
//	levbench                      # run everything at reference scale
//	levbench -exp overhead        # one experiment (T1/F1/... by id)
//	levbench -size test           # faster, smaller inputs
//	levbench -list                # list experiment ids
//	levbench -journal runs.jsonl  # record completed cells; re-run resumes
//	levbench -retries 2 -run-timeout 10m
//
// Robustness: the sweep supervisor degrades instead of aborting. A cell that
// fails (watchdog, divergence, panic, deadline) renders as "n/a" in its
// table; after all experiments a failure table is printed to stderr and
// levbench exits non-zero, so completed work is never lost to one bad run.
// With -journal, completed cells are recorded as they finish and a re-run of
// the same invocation resumes without re-simulating them.
package main

import (
	"flag"
	"fmt"
	"os"

	"levioso/internal/harness"
	"levioso/internal/prof"
	"levioso/internal/workloads"
)

func main() {
	os.Exit(run())
}

// run is the real main; funneling every exit through its return value lets
// the deferred profile flush (-cpuprofile/-memprofile) always happen.
func run() int {
	exp := flag.String("exp", "", "experiment id (default: all)")
	sizeName := flag.String("size", "ref", "workload scale: test or ref")
	list := flag.Bool("list", false, "list experiment ids and exit")
	journalPath := flag.String("journal", "", "JSON-lines run journal for checkpoint/resume")
	retries := flag.Int("retries", 0, "retries per cell after a transient failure")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock bound per run attempt (0 = none)")
	profiles := prof.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Println(id)
		}
		return 0
	}
	if err := profiles.Start(); err != nil {
		return fail(err)
	}
	defer profiles.Stop()
	var size workloads.Size
	switch *sizeName {
	case "test":
		size = workloads.SizeTest
	case "ref":
		size = workloads.SizeRef
	default:
		fmt.Fprintf(os.Stderr, "levbench: unknown size %q (test|ref)\n", *sizeName)
		return 2
	}
	opt := harness.NewRunOpts(size)
	opt.Retries = *retries
	opt.RunTimeout = *runTimeout
	if *journalPath != "" {
		j, err := harness.OpenJournal(*journalPath)
		if err != nil {
			return fail(err)
		}
		defer j.Close()
		if n := j.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "levbench: journal %s: resuming past %d completed cells\n",
				*journalPath, n)
		}
		opt.Journal = j
	}

	if *exp == "" {
		if err := harness.RunAll(os.Stdout, opt); err != nil {
			return fail(err)
		}
	} else {
		out, err := harness.RunExperiment(*exp, opt)
		if err != nil {
			return fail(err)
		}
		fmt.Println(out)
	}
	if fs := opt.Failures(); len(fs) > 0 {
		fmt.Fprintf(os.Stderr, "levbench: %d cell(s) failed; report is degraded (n/a entries)\n", len(fs))
		fmt.Fprintln(os.Stderr, harness.RenderFailures(fs))
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "levbench:", err)
	return 1
}
