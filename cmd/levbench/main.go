// levbench regenerates the paper's tables and figures (see DESIGN.md's
// experiment index).
//
// Usage:
//
//	levbench                      # run everything at reference scale
//	levbench -exp overhead        # one experiment (T1/F1/... by id)
//	levbench -size test           # faster, smaller inputs
//	levbench -list                # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"levioso/internal/harness"
	"levioso/internal/workloads"
)

func main() {
	exp := flag.String("exp", "", "experiment id (default: all)")
	sizeName := flag.String("size", "ref", "workload scale: test or ref")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	var size workloads.Size
	switch *sizeName {
	case "test":
		size = workloads.SizeTest
	case "ref":
		size = workloads.SizeRef
	default:
		fmt.Fprintf(os.Stderr, "levbench: unknown size %q (test|ref)\n", *sizeName)
		os.Exit(2)
	}
	if *exp == "" {
		if err := harness.RunAll(os.Stdout, size); err != nil {
			fatal(err)
		}
		return
	}
	out, err := harness.RunExperiment(*exp, size)
	if err != nil {
		fatal(err)
	}
	fmt.Println(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "levbench:", err)
	os.Exit(1)
}
