// levbench regenerates the paper's tables and figures (see DESIGN.md's
// experiment index).
//
// Usage:
//
//	levbench                      # run everything at reference scale
//	levbench -exp overhead        # one experiment (T1/F1/... by id)
//	levbench -exp rob,bdt         # a comma-separated subset, in order
//	levbench -size test           # faster, smaller inputs
//	levbench -list                # list experiment ids
//	levbench -journal runs.jsonl  # record completed cells; re-run resumes
//	levbench -retries 2 -run-timeout 10m
//
// Robustness: the sweep supervisor degrades instead of aborting. A cell that
// fails (watchdog, divergence, panic, deadline) renders as "n/a" in its
// table; after all experiments a failure table is printed to stderr and
// levbench exits non-zero, so completed work is never lost to one bad run.
// With -journal, completed cells are recorded as they finish and a re-run of
// the same invocation resumes without re-simulating them. SIGINT/SIGTERM
// cancel the sweep cleanly: the journal is flushed and closed, and exit is
// 130 with a resume hint rather than a mid-write kill.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"levioso/internal/cli"
	"levioso/internal/harness"
	"levioso/internal/prof"
)

func main() {
	os.Exit(run())
}

// run is the real main; funneling every exit through its return value lets
// the deferred profile flush (-cpuprofile/-memprofile) always happen.
func run() int {
	exp := flag.String("exp", "", "experiment id, or a comma-separated list (default: all)")
	sizeName := flag.String("size", "ref", "workload scale: test or ref")
	list := flag.Bool("list", false, "list experiment ids and exit")
	journalPath := flag.String("journal", "", "JSON-lines run journal for checkpoint/resume")
	retries := flag.Int("retries", 0, "retries per cell after a transient failure")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock bound per run attempt (0 = none)")
	profiles := prof.Register(flag.CommandLine)
	metrics := cli.RegisterMetrics(flag.CommandLine)
	flag.Parse()
	defer func() { cli.DumpMetrics("levbench", *metrics) }()

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Println(id)
		}
		return 0
	}
	ids, unknown := parseExpList(*exp)
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "levbench: unknown experiment(s) %s (have %s)\n",
			strings.Join(unknown, ", "), strings.Join(harness.ExperimentIDs(), ", "))
		return 2
	}
	if err := profiles.Start(); err != nil {
		return cli.Fail("levbench", err)
	}
	defer profiles.Stop()
	size, err := cli.ParseSize(*sizeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "levbench: %v\n", err)
		return 2
	}
	opt := harness.NewRunOpts(size)
	opt.Retries = *retries
	opt.RunTimeout = *runTimeout
	if *journalPath != "" {
		j, err := harness.OpenJournal(*journalPath)
		if err != nil {
			return cli.Fail("levbench", err)
		}
		defer j.Close()
		if n := j.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "levbench: journal %s: resuming past %d completed cells\n",
				*journalPath, n)
		}
		opt.Journal = j
	}

	// SIGINT/SIGTERM cancel the sweep context: in-flight cells unwind, the
	// journal (already flushed per completed cell) closes cleanly via the
	// defer above, and a re-run of the same invocation resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if len(ids) == 0 {
		if err := harness.RunAll(ctx, os.Stdout, opt); err != nil {
			return failOrInterrupted(ctx, err)
		}
	} else {
		for _, id := range ids {
			if len(ids) > 1 {
				fmt.Printf("==> experiment %s\n", id)
			}
			out, err := harness.RunExperiment(ctx, id, opt)
			if err != nil {
				return failOrInterrupted(ctx, err)
			}
			fmt.Println(out)
		}
	}
	if fs := opt.Failures(); len(fs) > 0 {
		fmt.Fprintf(os.Stderr, "levbench: %d cell(s) failed; report is degraded (n/a entries)\n", len(fs))
		fmt.Fprintln(os.Stderr, harness.RenderFailures(fs))
		return 1
	}
	return 0
}

// failOrInterrupted distinguishes "the user hit ctrl-C" (exit 130, the
// conventional interrupted status, with a resume hint) from a real failure.
func failOrInterrupted(ctx context.Context, err error) int {
	if ctx.Err() != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "levbench: interrupted; completed cells are journaled, re-run to resume")
		return 130
	}
	return cli.Fail("levbench", err)
}

// parseExpList splits a comma-separated experiment list and validates every
// id, so a typo in any position is reported together with the rest instead
// of failing on the first after experiments already ran.
func parseExpList(arg string) (ids, unknown []string) {
	known := make(map[string]bool)
	for _, id := range harness.ExperimentIDs() {
		known[id] = true
	}
	for _, id := range strings.Split(arg, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		ids = append(ids, id)
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	return ids, unknown
}
