// Package levioso is the root of a from-scratch reproduction of
// "Levioso: Efficient Compiler-Informed Secure Speculation" (DAC 2024).
//
// The paper's contribution — compiler-computed true branch dependencies
// (reconvergence points + region write sets) consumed by a hardware Branch
// Dependency Table that restricts only truly-dependent transmitters — lives
// in internal/core. Everything it is evaluated on is built here too: the
// LEV64 ISA (internal/isa), an assembler (internal/asm), the LevC compiler
// (internal/lang), CFG/dominance analyses (internal/cfg), an out-of-order
// core simulator (internal/cpu) with its cache hierarchy (internal/mem),
// the baseline defenses (internal/secure), the attack harness
// (internal/attack), the workload suite (internal/workloads) and the
// experiment harness (internal/harness).
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem .
package levioso
