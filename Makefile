# Levioso simulator build/test entry points. The repo is stdlib-only Go, so
# these are thin wrappers the CI and the verify flow share.

GO ?= go

.PHONY: all build vet test race bench ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector — the concurrent sweep
# supervisor and the shared-program immutability guarantee are checked here.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# ci is the gate: vet, build, and the full suite under -race.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

clean:
	$(GO) clean ./...
