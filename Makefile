# Levioso simulator build/test entry points. The repo is stdlib-only Go, so
# these are thin wrappers the CI and the verify flow share.

GO ?= go

.PHONY: all build vet test race bench golden gate smoke obssmoke chaossmoke netchaossmoke fuzzsmoke campaignsmoke attacksmoke replay ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector — the concurrent sweep
# supervisor and the shared-program immutability guarantee are checked here.
race:
	$(GO) test -race ./...

# bench runs the full benchmark suite and appends a timestamped simulator
# hot-loop report (sim cycles/sec, allocs per committed instruction, ns per
# simulated cycle) to the BENCH_cpu.json trajectory, so the file records
# every measured point instead of only the latest.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ -benchjson BENCH_cpu.json .

# benchsmoke is the CI performance gate: a quick hot-loop measurement
# compared against the newest committed BENCH_cpu.json entry, failing on a
# >20% suite-mean sim-cycles/s regression (cell-best reduction, see
# cmd/benchguard, to keep shared-machine noise out of the verdict).
benchsmoke:
	$(GO) test -bench='BenchmarkHotLoop|BenchmarkBatch' -benchtime=3x -run=^$$ \
		-benchjson .bench_smoke.json .
	$(GO) run ./cmd/benchguard -baseline BENCH_cpu.json -candidate .bench_smoke.json
	rm -f .bench_smoke.json

# golden re-runs the workload-characterization experiment at reference scale
# and diffs it byte-for-byte against the checked-in levbench_ref_output.txt.
# The charact table carries exact cycle/IPC/mispredict/miss counts for every
# workload, so any change to the simulator's timing model shows up here.
golden:
	$(GO) run ./cmd/levbench -exp charact -size ref > .golden_charact.out
	awk '/^==> experiment charact$$/{f=1;next} /^==> experiment /{f=0} f' \
		levbench_ref_output.txt | diff - .golden_charact.out
	rm -f .golden_charact.out
	@echo "golden charact sweep: byte-identical"

# gate enforces the engine layering: every cmd/ main is a thin adapter over
# internal/engine, so none may wire internal/cpu or internal/secure directly.
gate:
	@if grep -rnE '"levioso/internal/(cpu|secure)"' cmd/; then \
		echo "FAIL: cmd/ must not import internal/cpu or internal/secure (build on internal/engine)"; \
		exit 1; \
	fi
	@echo "import gate: cmd/ builds exclusively on internal/engine"

# smoke drives the levserve daemon end to end under -race: start, POST a
# simulate request, assert the identical second request is a cache hit, prove
# a client disconnect cancels an in-flight run without wedging the worker
# pool, and shut down cleanly.
smoke:
	$(GO) test -race -run 'TestServeSmoke|TestServeClientCancel' ./internal/serve

# obssmoke is the observability gate: boot levserve, run one simulate,
# scrape GET /metrics and fail on unparseable Prometheus exposition lines or
# missing required families (per-stage engine histograms, per-route serve
# counters), then assert every failure status renders the unified
# {"error":{kind,message,retryable}} envelope.
obssmoke:
	$(GO) test -race -count=1 -run 'TestServeMetricsSmoke|TestServeErrorEnvelope|TestServeQueueGiveUp503|TestServeVersion|TestServeAccessLog' ./internal/serve

# chaossmoke is the resilience gate: a 100-cell batch through the dispatch
# coordinator under a seeded transport-fault storm (worker kills, stalls,
# corrupted and delayed replies), with -race. Every cell must come back
# bit-identical to a fault-free run, nothing lost or duplicated, and the
# retry/breaker/restart counters must scrape as valid Prometheus text. The
# batch streaming endpoint's own e2e tests ride along.
chaossmoke:
	$(GO) test -race -count=1 -run TestChaosBatchGracefulDegradation ./internal/faultinject
	$(GO) test -race -count=1 -run 'TestBatchStreamsCorrectResults|TestBatchShedsWithRetryAfter|TestBatchClientDisconnectKeepsPartialResults' ./internal/serve

# netchaossmoke is the partition-tolerance gate: a 100-cell batch dispatched
# to two worker daemons over real loopback TCP under a seeded storm of
# connection kills, silent partitions, corrupted frames, and link latency,
# with -race. Every cell must come back bit-identical, no call may hang, no
# goroutine may leak, and the remote-fleet counters (dials, reconnects,
# partitions, heartbeats, dedup hits) must scrape as valid Prometheus text.
# The remote-worker lifecycle and single-flight unit tests ride along.
netchaossmoke:
	$(GO) test -race -count=1 -run TestNetChaosBatchBitIdentical ./internal/faultinject
	$(GO) test -race -count=1 -run 'TestRemote|TestSingleFlight' ./internal/dispatch
	$(GO) test -race -count=1 -run TestServeRemoteBatch ./internal/serve

# fuzzsmoke runs the differential fuzzer for a fixed-seed ten-second
# session: seeded random programs (all six generation profiles) judged by
# the full oracle stack — architectural differential vs the reference model,
# bit-exact determinism, core invariants under squash storms, the gadget
# security oracle — under every registered policy. Any finding fails ci.
fuzzsmoke:
	$(GO) run ./cmd/levfuzz -duration 10s -seed 1 -q

# campaignsmoke is the coverage-guided campaign gate, under -race: a seeded
# campaign is SIGKILLed mid-run from a subprocess and resumed — no committed
# case may re-execute and the converged state file must be bit-identical to
# an uninterrupted run's; the guided scheduler must beat blind generation at
# a fixed seed and budget; and the daemon's /v1/fuzz endpoints must complete
# a campaign end to end with valid Prometheus exposition for the
# fuzz_campaign_* families.
campaignsmoke:
	$(GO) test -race -count=1 -run 'TestCampaignKillResume|TestCampaignResumeDeterminism|TestCampaignGuidedBeatsBlind' ./internal/fuzz
	$(GO) test -race -count=1 -run 'TestServeFuzz' ./internal/serve

# attacksmoke replays the attack expectation matrix: all four transient-
# execution gadgets against every registered policy configuration (the full
# registry sweep — parameterized families at every level), each outcome judged
# against its coverage contract. Exit 1 on any contract violation.
attacksmoke:
	$(GO) run ./cmd/levattack

# replay re-judges the checked-in regression corpus (internal/fuzz/testdata)
# through the complete oracle stack under the race detector, twice,
# asserting bit-identical verdicts.
replay:
	$(GO) test -race -count=1 -run TestCorpusReplay ./internal/fuzz

# ci is the gate: vet, build, the full suite under -race, a short benchmark
# pass (catches bench-only compile/regression breakage), the cmd/ import
# gate, the levserve smoke test, the seeded chaos smoke (batch dispatch under
# a transport-fault storm), the seeded network chaos smoke (remote TCP
# workers under a connection-fault storm), the fixed-seed fuzz smoke +
# corpus replay, the kill -9 campaign resume smoke, the attack
# expectation-matrix replay, and the golden timing-model diff.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) benchsmoke
	$(MAKE) gate
	$(MAKE) smoke
	$(MAKE) obssmoke
	$(MAKE) chaossmoke
	$(MAKE) netchaossmoke
	$(MAKE) fuzzsmoke
	$(MAKE) campaignsmoke
	$(MAKE) attacksmoke
	$(MAKE) replay
	$(MAKE) golden

clean:
	$(GO) clean ./...
