package levioso

// End-to-end coverage for the cmd/ entry points' code path. The mains are
// thin flag-to-Request adapters over internal/engine (enforced by the make
// ci import gate), so this file drives exactly what they drive: the engine's
// Compile step on an example program, simulation under two policies, and a
// golden check of the architectural output — which must be identical across
// policies and match the precomputed expectation byte for byte.

import (
	"context"
	"testing"

	"levioso/internal/engine"
)

// e2eSrc mirrors the quickstart example: a histogram with data-dependent
// branches. sum(i*i, i<100) = 328350 is the printed golden value.
const e2eSrc = `
var sq[100];
func main() {
	var i;
	var acc = 0;
	for (i = 0; i < 100; i = i + 1) {
		sq[i] = i * i;
		if (sq[i] > 50) { acc = acc + sq[i]; } else { acc = acc + i * i; }
	}
	print(acc);
	return acc & 255;
}`

const e2eWantOutput = "328350\n"
const e2eWantExit = uint64(328350 & 255)

func TestCmdPipelineGolden(t *testing.T) {
	// Compile once with the engine's Compile step — the levc path.
	prog, annot, err := engine.Compile("e2e.lc", e2eSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	if annot == nil || annot.Branches == 0 {
		t.Fatalf("annotation pass produced no statistics: %+v", annot)
	}
	// The levc output is a binary image; the levsim path loads it back.
	img, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	var cycles = map[string]uint64{}
	for _, pol := range []string{"unsafe", "levioso"} {
		res, err := engine.Run(context.Background(), engine.Request{
			Name: "e2e.bin", Binary: img, Verify: true,
			Overrides: engine.Overrides{Policy: pol},
		})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Output != e2eWantOutput {
			t.Errorf("%s: output %q, want golden %q", pol, res.Output, e2eWantOutput)
		}
		if res.ExitCode != e2eWantExit {
			t.Errorf("%s: exit %d, want golden %d", pol, res.ExitCode, e2eWantExit)
		}
		cycles[pol] = res.Stats.Cycles
	}
	// The secure policy pays cycles, never changes architecture.
	if cycles["levioso"] < cycles["unsafe"] {
		t.Errorf("levioso ran faster than unsafe (%d < %d cycles) — suspicious",
			cycles["levioso"], cycles["unsafe"])
	}

	// The reference-model path (levsim -ref) must agree with the golden too.
	rres, err := engine.Run(context.Background(), engine.Request{
		Name: "e2e.bin", Binary: img, UseRef: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rres.Output != e2eWantOutput || rres.ExitCode != e2eWantExit {
		t.Errorf("reference run diverges from golden: %+v", rres)
	}
}
