package levioso

// One benchmark per table/figure in the paper's evaluation (see DESIGN.md's
// experiment index). Each bench regenerates its table/figure at test scale
// and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. cmd/levbench runs the same experiments
// at full reference scale.

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"

	"levioso/internal/attack"
	"levioso/internal/core"
	"levioso/internal/cpu"
	"levioso/internal/harness"
	"levioso/internal/obs"
	"levioso/internal/secure"
	"levioso/internal/workloads"
)

// BenchmarkTableConfig regenerates T1 (simulated core configuration).
func BenchmarkTableConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := harness.ExpConfig(cpu.DefaultConfig()); len(out) == 0 {
			b.Fatal("empty config table")
		}
	}
}

// BenchmarkFigOverhead regenerates F1 (the headline per-benchmark overhead
// figure) and reports each policy's geomean overhead in percent.
func BenchmarkFigOverhead(b *testing.B) {
	spec := harness.DefaultSpec()
	spec.Size = workloads.SizeTest
	for i := 0; i < b.N; i++ {
		runs, err := harness.Sweep(spec)
		if err != nil {
			b.Fatal(err)
		}
		ix := harness.NewIndex(runs)
		for _, p := range spec.Policies[1:] {
			b.ReportMetric(100*ix.GeoMeanOverhead(p, "unsafe"), p+"-ov%")
		}
	}
}

// BenchmarkFigOverheadPerPolicy gives per-policy sub-benchmarks over the
// whole suite (cycles are the benchmark cost itself).
func BenchmarkFigOverheadPerPolicy(b *testing.B) {
	for _, pol := range secure.EvalNames() {
		pol := pol
		b.Run(pol, func(b *testing.B) {
			spec := harness.DefaultSpec()
			spec.Size = workloads.SizeTest
			spec.Policies = []string{pol}
			spec.Verify = false
			var cycles uint64
			for i := 0; i < b.N; i++ {
				runs, err := harness.Sweep(spec)
				if err != nil {
					b.Fatal(err)
				}
				cycles = 0
				for _, r := range runs {
					cycles += r.Stats.Cycles
				}
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkFigRestricted regenerates F2 (fraction of transmitters
// restricted) and reports the means.
func BenchmarkFigRestricted(b *testing.B) {
	spec := harness.DefaultSpec()
	spec.Size = workloads.SizeTest
	spec.Policies = []string{"unsafe", "delay", "levioso"}
	for i := 0; i < b.N; i++ {
		runs, err := harness.Sweep(spec)
		if err != nil {
			b.Fatal(err)
		}
		ix := harness.NewIndex(runs)
		var spec_, lev float64
		n := 0
		for _, w := range ix.Workloads {
			u, _ := ix.Stats(w, "unsafe")
			l, _ := ix.Stats(w, "levioso")
			spec_ += u.SpecFrac()
			lev += l.RestrictedFrac()
			n++
		}
		b.ReportMetric(100*spec_/float64(n), "conservative-%")
		b.ReportMetric(100*lev/float64(n), "levioso-%")
	}
}

// BenchmarkFigROBSweep regenerates F3 (overhead vs window size) at three
// window sizes.
func BenchmarkFigROBSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.ExpROBSweep(context.Background(), harness.NewRunOpts(workloads.SizeTest), []int{96, 192, 320})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFigMispredict regenerates F4 (overhead vs predictor quality).
func BenchmarkFigMispredict(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.ExpMispredict(context.Background(), harness.NewRunOpts(workloads.SizeTest), []float64{0, 0.05, 0.15})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTableSecurity regenerates T2 (the attack matrix) and reports the
// number of policies that leaked each attack.
func BenchmarkTableSecurity(b *testing.B) {
	policies := append(append([]string{}, secure.EvalNames()...), "taint")
	for i := 0; i < b.N; i++ {
		outcomes, err := attack.Run(policies, nil)
		if err != nil {
			b.Fatal(err)
		}
		v1, ct := 0, 0
		for _, o := range outcomes {
			if o.V1Leaks() {
				v1++
			}
			if o.CTLeaks() {
				ct++
			}
		}
		b.ReportMetric(float64(v1), "v1-leaky-policies")
		b.ReportMetric(float64(ct), "ct-leaky-policies")
	}
}

// BenchmarkFigAblation regenerates F5 (Levioso component ablation).
func BenchmarkFigAblation(b *testing.B) {
	spec := harness.DefaultSpec()
	spec.Size = workloads.SizeTest
	spec.Policies = []string{"unsafe", "levioso-ctrl", "levioso"}
	for i := 0; i < b.N; i++ {
		runs, err := harness.Sweep(spec)
		if err != nil {
			b.Fatal(err)
		}
		ix := harness.NewIndex(runs)
		b.ReportMetric(100*ix.GeoMeanOverhead("levioso-ctrl", "unsafe"), "ctrl-only-ov%")
		b.ReportMetric(100*ix.GeoMeanOverhead("levioso", "unsafe"), "full-ov%")
	}
}

// BenchmarkTableCompiler regenerates T3 (annotation statistics) and reports
// the mean annotated fraction.
func BenchmarkTableCompiler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total, annotated := 0, 0
		for _, w := range workloads.All() {
			prog, err := w.Build(workloads.SizeTest)
			if err != nil {
				b.Fatal(err)
			}
			st, err := core.Annotate(prog)
			if err != nil {
				b.Fatal(err)
			}
			total += st.Branches
			annotated += st.Annotated
		}
		b.ReportMetric(100*float64(annotated)/float64(total), "annotated-%")
	}
}

// BenchmarkSimThroughput measures raw simulator speed (simulated
// instructions per wall-clock second) on one workload per policy — useful
// for tracking the cost of the defenses' bookkeeping itself.
func BenchmarkSimThroughput(b *testing.B) {
	w, _ := workloads.ByName("fsm")
	prog := w.MustBuild(workloads.SizeTest)
	for _, pol := range []string{"unsafe", "levioso"} {
		pol := pol
		b.Run(pol, func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				c, err := cpu.New(prog, cpu.DefaultConfig(), secure.MustNew(pol))
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.Run()
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Stats.Committed
			}
			b.ReportMetric(float64(insts*uint64(b.N))/b.Elapsed().Seconds(), "sim-insts/s")
		})
	}
}

// benchJSONPath, when set, makes BenchmarkHotLoop write its measurements to
// the named file in the BENCH_cpu.json format documented in EXPERIMENTS.md.
// `make bench` passes -benchjson=BENCH_cpu.json; the file is the trajectory
// point future perf PRs are compared against.
var benchJSONPath = flag.String("benchjson", "", "write BenchmarkHotLoop results to this JSON file")

// hotLoopEntry is one (workload, policy) measurement in BENCH_cpu.json.
type hotLoopEntry struct {
	Workload      string  `json:"workload"`
	Policy        string  `json:"policy"`
	Size          string  `json:"size"`
	SimCycles     uint64  `json:"sim_cycles"`
	SimInsts      uint64  `json:"sim_insts"`
	WallNs        int64   `json:"wall_ns"`
	CyclesPerSec  float64 `json:"sim_cycles_per_sec"`
	InstsPerSec   float64 `json:"sim_insts_per_sec"`
	NsPerCycle    float64 `json:"ns_per_sim_cycle"`
	AllocsPerInst float64 `json:"allocs_per_committed_inst"`
	BytesPerInst  float64 `json:"bytes_per_committed_inst"`
}

// benchTrajectory is the on-disk shape of BENCH_cpu.json: an append-only
// sequence of timestamped reports, oldest first. `make bench` appends one
// point per invocation instead of overwriting, so the file records the
// repository's performance trajectory and the CI bench-smoke always has the
// previously committed point to compare against.
type benchTrajectory struct {
	Entries []benchPoint `json:"entries"`
}

// benchPoint is one trajectory entry: a hotLoopReport plus when it was taken.
type benchPoint struct {
	Timestamp string `json:"timestamp"` // RFC 3339 UTC; "" for pre-trajectory legacy imports
	hotLoopReport
}

type hotLoopReport struct {
	GeneratedBy string  `json:"generated_by"`
	GoVersion   string  `json:"go_version"`
	MeanCPS     float64 `json:"suite_mean_sim_cycles_per_sec"`
	MeanAllocs  float64 `json:"suite_mean_allocs_per_committed_inst"`
	// Per-cell simulate wall-clock quantiles over every measured
	// (workload, policy) cell, estimated from an internal/obs latency
	// histogram — the same bucket layout levserve's /metrics exports, so
	// the offline and the served numbers are directly comparable.
	SimLatencyP50 float64        `json:"sim_latency_p50_s"`
	SimLatencyP95 float64        `json:"sim_latency_p95_s"`
	SimLatencyP99 float64        `json:"sim_latency_p99_s"`
	Measurements  []hotLoopEntry `json:"measurements"`
}

// measureHotLoop runs one (workload, policy) cell once and returns its
// steady-state measurement. Core construction is excluded from both the
// timing and the allocation accounting: the metric is the cost of simulating
// a cycle, not of building a core.
func measureHotLoop(b *testing.B, w workloads.Workload, size workloads.Size, pol string) hotLoopEntry {
	b.Helper()
	prog := w.MustBuild(size)
	c, err := cpu.New(prog, cpu.DefaultConfig(), secure.MustNew(pol))
	if err != nil {
		b.Fatal(err)
	}
	var before, after runtime.MemStats
	// Collect construction garbage (program build, core tables, earlier
	// cells) before the timed region so a GC pause triggered by setup debt
	// is not charged to the simulator's hot loop.
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := c.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		b.Fatal(err)
	}
	sizeName := "test"
	if size == workloads.SizeRef {
		sizeName = "ref"
	}
	e := hotLoopEntry{
		Workload:  w.Name,
		Policy:    pol,
		Size:      sizeName,
		SimCycles: res.Stats.Cycles,
		SimInsts:  res.Stats.Committed,
		WallNs:    wall.Nanoseconds(),
	}
	sec := wall.Seconds()
	if sec > 0 {
		e.CyclesPerSec = float64(res.Stats.Cycles) / sec
		e.InstsPerSec = float64(res.Stats.Committed) / sec
	}
	if res.Stats.Cycles > 0 {
		e.NsPerCycle = float64(wall.Nanoseconds()) / float64(res.Stats.Cycles)
	}
	if res.Stats.Committed > 0 {
		e.AllocsPerInst = float64(after.Mallocs-before.Mallocs) / float64(res.Stats.Committed)
		e.BytesPerInst = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Stats.Committed)
	}
	return e
}

// BenchmarkHotLoop measures the simulator's raw hot-loop performance over the
// twelve-kernel suite (the "medium" scale: every kernel at test inputs) under
// the unprotected and the Levioso cores, reporting simulated cycles per
// wall-clock second, nanoseconds per simulated cycle, and heap allocations
// per committed instruction. With -benchjson=FILE the last iteration's
// measurements are written as BENCH_cpu.json (see EXPERIMENTS.md).
func BenchmarkHotLoop(b *testing.B) {
	var report hotLoopReport
	for _, pol := range []string{"unsafe", "levioso"} {
		pol := pol
		b.Run(pol, func(b *testing.B) {
			var entries []hotLoopEntry
			for i := 0; i < b.N; i++ {
				entries = entries[:0]
				for _, w := range workloads.All() {
					entries = append(entries, measureHotLoop(b, w, workloads.SizeTest, pol))
				}
			}
			var cps, allocs float64
			for _, e := range entries {
				cps += e.CyclesPerSec
				allocs += e.AllocsPerInst
			}
			n := float64(len(entries))
			b.ReportMetric(cps/n, "sim-cycles/s")
			b.ReportMetric(allocs/n, "allocs/inst")
			report.Measurements = append(report.Measurements, entries...)
		})
	}
	if *benchJSONPath != "" {
		report.GeneratedBy = "go test -bench=HotLoop -benchjson (make bench)"
		report.GoVersion = runtime.Version()
		var cps, allocs float64
		lat := obs.NewRegistry().Histogram("sim_latency_seconds",
			"per-cell simulate wall time", obs.LatencyBuckets())
		for _, e := range report.Measurements {
			cps += e.CyclesPerSec
			allocs += e.AllocsPerInst
			lat.Observe(float64(e.WallNs) / 1e9)
		}
		if n := float64(len(report.Measurements)); n > 0 {
			report.MeanCPS = cps / n
			report.MeanAllocs = allocs / n
			snap := lat.Snapshot()
			report.SimLatencyP50 = snap.Quantile(0.50)
			report.SimLatencyP95 = snap.Quantile(0.95)
			report.SimLatencyP99 = snap.Quantile(0.99)
		}
		if err := appendBenchPoint(*benchJSONPath, report); err != nil {
			b.Fatal(err)
		}
	}
}

// appendBenchPoint appends one timestamped report to the trajectory file at
// path, creating it when absent and converting a legacy flat-report file
// (the pre-trajectory format) into the first, timestamp-less entry.
func appendBenchPoint(path string, report hotLoopReport) error {
	var traj benchTrajectory
	if raw, err := os.ReadFile(path); err == nil {
		if jerr := json.Unmarshal(raw, &traj); jerr != nil || len(traj.Entries) == 0 {
			var legacy benchPoint
			if jerr := json.Unmarshal(raw, &legacy); jerr == nil && len(legacy.Measurements) > 0 {
				traj.Entries = []benchPoint{legacy}
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	traj.Entries = append(traj.Entries, benchPoint{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		hotLoopReport: report,
	})
	out, err := json.MarshalIndent(&traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// BenchmarkBatch measures suite throughput through the cpu.RunBatch pool:
// every (workload, policy) cell of the hot-loop suite is built as an
// independent core and the whole population is advanced to completion by a
// GOMAXPROCS-sized worker pool in fixed cycle quanta. The aggregate metric is
// total simulated cycles per wall-clock second across the population — the
// figure of merit for the sweep/fuzz/dispatch tiers, which run exactly this
// many-independent-cores shape.
func BenchmarkBatch(b *testing.B) {
	var progs []struct {
		w   workloads.Workload
		pol string
	}
	for _, pol := range []string{"unsafe", "levioso"} {
		for _, w := range workloads.All() {
			progs = append(progs, struct {
				w   workloads.Workload
				pol string
			}{w, pol})
		}
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cores := make([]*cpu.Core, len(progs))
		for j, p := range progs {
			c, err := cpu.New(p.w.MustBuild(workloads.SizeTest), cpu.DefaultConfig(), secure.MustNew(p.pol))
			if err != nil {
				b.Fatal(err)
			}
			cores[j] = c
		}
		runtime.GC()
		b.StartTimer()
		cycles = 0
		for j, br := range cpu.RunBatch(context.Background(), cores, 0) {
			if br.Err != nil {
				b.Fatalf("cell %s/%s: %v", progs[j].w.Name, progs[j].pol, br.Err)
			}
			cycles += br.Res.Stats.Cycles
		}
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkAnnotatePass measures the compiler pass itself.
func BenchmarkAnnotatePass(b *testing.B) {
	w, _ := workloads.ByName("qsort")
	prog := w.MustBuild(workloads.SizeTest)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Annotate(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigBDTSweep regenerates F6 (overhead vs Branch Dependency Table
// size — the hardware-cost knob).
func BenchmarkFigBDTSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.ExpBDTSweep(context.Background(), harness.NewRunOpts(workloads.SizeTest), []int{8, 32, 64})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTableCharacterization regenerates T1b (workload characterization).
func BenchmarkTableCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.ExpCharacterization(context.Background(), harness.NewRunOpts(workloads.SizeTest))
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty")
		}
	}
}
